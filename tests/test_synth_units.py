"""Unit tests for the synthesis components: enumeration, effect guidance,
search, merging, simplification, pretty printing and the spec DSL."""

from __future__ import annotations

import pytest

from repro.lang import ast as A
from repro.lang import types as T
from repro.lang.effects import Effect
from repro.lang.pretty import pretty, pretty_block
from repro.apps.blog import build_blog_app, seed_blog
from repro.synth import SynthConfig, define, evaluate_spec, synthesize
from repro.synth.config import ORDER_FIFO
from repro.synth.effect_guided import expand_effect_hole, insert_effect_hole, writers_for
from repro.synth.enumerate import expand_typed_hole
from repro.synth.goal import Budget, evaluate_guard
from repro.synth.merge import Merger, SpecSolution
from repro.synth.search import generate_for_spec, generate_guard
from repro.synth.simplify import simplify


# ---------------------------------------------------------------------------
# Shared problem fixture
# ---------------------------------------------------------------------------


@pytest.fixture()
def blog_problem():
    app = build_blog_app()
    User = app.models["User"]
    problem = define(
        "find_user",
        "(Str) -> User",
        consts=[True, False, User],
        class_table=app.class_table,
        reset=app.reset,
    )

    def setup(ctx):
        seed_blog(app)
        ctx.invoke("carol")

    def postcond(ctx, result):
        ctx.assert_(lambda: result.username == "carol")

    problem.add_spec("finds carol", setup, postcond)
    problem.app = app  # type: ignore[attr-defined]
    return problem


# ---------------------------------------------------------------------------
# Pretty printer
# ---------------------------------------------------------------------------


def test_pretty_keyword_hash_call():
    expr = A.call(A.ConstRef("Post"), "where", A.hash_lit(slug=A.Var("arg1")))
    assert pretty(expr) == "Post.where(slug: arg1)"


def test_pretty_setter_and_index():
    expr = A.call(A.Var("t0"), "title=", A.call(A.Var("arg2"), "[]", A.SymLit("title")))
    assert pretty(expr) == "t0.title = arg2[:title]"


def test_pretty_operator_and_negation():
    assert pretty(A.call(A.Var("x"), "-", A.IntLit(1))) == "x - 1"
    assert pretty(A.Not(A.Var("b"))) == "!b"
    assert pretty(A.Or(A.Var("a"), A.Var("b"))) == "a || b"


def test_pretty_holes():
    assert "□" in pretty(A.TypedHole(T.ClassType("Post")))
    assert "◇" in pretty(A.EffectHole(Effect.of("Post.title")))


def test_pretty_block_method_def():
    program = A.MethodDef(
        "m", ("arg0",), A.If(A.Var("arg0"), A.StrLit("yes"), A.StrLit("no"))
    )
    text = pretty_block(program)
    assert text.splitlines()[0] == "def m(arg0)"
    assert text.splitlines()[-1] == "end"
    assert "  if arg0" in text


def test_pretty_block_if_without_else():
    text = pretty_block(A.If(A.Var("b"), A.Var("x"), A.NIL))
    assert "else" not in text


# ---------------------------------------------------------------------------
# Simplifier
# ---------------------------------------------------------------------------


def test_simplify_drops_pure_statements():
    expr = A.Seq(A.NIL, A.Var("x"))
    assert simplify(expr) == A.Var("x")


def test_simplify_drops_dead_pure_let():
    expr = A.Let("t", A.Var("y"), A.Var("x"))
    assert simplify(expr) == A.Var("x")


def test_simplify_keeps_effectful_dead_let_value():
    call = A.call(A.ConstRef("Post"), "first")
    expr = A.Let("t", call, A.Var("x"))
    assert simplify(expr) == A.Seq(call, A.Var("x"))


def test_simplify_keeps_used_let():
    expr = A.Let("t", A.call(A.ConstRef("Post"), "first"), A.Var("t"))
    assert simplify(expr) == expr


def test_simplify_double_negation():
    assert simplify(A.Not(A.Not(A.Var("b")))) == A.Var("b")


def test_simplify_recurses_into_branches():
    expr = A.If(A.TRUE, A.Seq(A.NIL, A.Var("x")), A.Var("y"))
    assert simplify(expr) == A.If(A.TRUE, A.Var("x"), A.Var("y"))


# ---------------------------------------------------------------------------
# Type-guided enumeration
# ---------------------------------------------------------------------------


def test_expand_root_hole_offers_vars_consts_and_calls(blog_problem):
    config = SynthConfig()
    root = A.TypedHole(T.ClassType("User"))
    site = A.first_hole(root)
    candidates = expand_typed_hole(root, site, blog_problem, config)
    assert any(isinstance(c, A.MethodCall) for c in candidates)
    # No Str-typed constant or variable fits a User-typed hole.
    assert A.Var("arg0") not in candidates
    assert A.TRUE not in candidates


def test_expand_bool_hole_includes_constants(blog_problem):
    config = SynthConfig()
    root = A.TypedHole(T.BOOL)
    candidates = expand_typed_hole(root, A.first_hole(root), blog_problem, config)
    assert A.TRUE in candidates and A.FALSE in candidates


def test_expand_unguided_mode_ignores_types(blog_problem):
    config = SynthConfig.unguided()
    root = A.TypedHole(T.ClassType("User"))
    candidates = expand_typed_hole(root, A.first_hole(root), blog_problem, config)
    assert A.Var("arg0") in candidates  # type filter disabled


def test_expand_hash_hole_enumerates_key_subsets(blog_problem):
    config = SynthConfig(max_hash_keys=2)
    hash_type = T.FiniteHashType.make(optional={"a": T.STRING, "b": T.STRING})
    root = A.call(A.ConstRef("User"), "where", A.TypedHole(hash_type))
    site = A.first_hole(root)
    candidates = expand_typed_hole(root, site, blog_problem, config)
    hash_args = [c.args[0] for c in candidates if isinstance(c.args[0], A.HashLit)]
    key_sets = {tuple(k for k, _ in h.entries) for h in hash_args}
    assert ("a",) in key_sets and ("b",) in key_sets and ("a", "b") in key_sets


def test_narrowing_prunes_nil_receivers(blog_problem):
    config = SynthConfig()
    expr = A.call(A.TypedHole(T.ClassType("User")), "name")
    site = A.first_hole(expr)
    candidates = expand_typed_hole(expr, site, blog_problem, config)
    assert A.call(A.NIL, "name") not in candidates


def test_let_bindings_are_visible_at_holes(blog_problem):
    config = SynthConfig()
    expr = A.Let(
        "t0",
        A.call(A.ConstRef("User"), "first"),
        A.TypedHole(T.ClassType("User")),
    )
    site = A.first_hole(expr)
    candidates = expand_typed_hole(expr, site, blog_problem, config)
    assert any(
        isinstance(c, A.Let) and c.body == A.Var("t0") for c in candidates
    )


# ---------------------------------------------------------------------------
# Effect-guided synthesis
# ---------------------------------------------------------------------------


def test_insert_effect_hole_shape(blog_problem):
    expr = A.call(A.ConstRef("User"), "first")
    wrapped = insert_effect_hole(expr, Effect.of("User.name"), blog_problem)
    assert isinstance(wrapped, A.Let)
    assert isinstance(wrapped.body, A.Seq)
    assert isinstance(wrapped.body.first, A.EffectHole)
    assert isinstance(wrapped.body.second, A.TypedHole)
    assert wrapped.body.second.type == T.ClassType("User")


def test_writers_for_matches_setters_and_coarser_methods(blog_problem):
    names = writers_for(Effect.of("User.name"), blog_problem)
    assert "User#name=" in names
    assert "User#update!" in names
    assert "Post#title=" not in names


def test_expand_effect_hole_offers_writers_and_nil(blog_problem):
    config = SynthConfig()
    expr = A.Seq(A.EffectHole(Effect.of("User.name")), A.TypedHole(T.ClassType("User")))
    site = A.first_hole(expr)
    candidates = expand_effect_hole(expr, site, blog_problem, config)
    assert any(
        isinstance(c.first, A.MethodCall) and c.first.name == "name=" for c in candidates
    )
    assert A.Seq(A.NIL, A.TypedHole(T.ClassType("User"))) in candidates


# ---------------------------------------------------------------------------
# Search and guards
# ---------------------------------------------------------------------------


def test_generate_for_spec_finds_solution(blog_problem):
    config = SynthConfig(timeout_s=20)
    expr = generate_for_spec(blog_problem, blog_problem.specs[0], config)
    assert expr is not None
    outcome = evaluate_spec(blog_problem, blog_problem.make_program(expr), blog_problem.specs[0])
    assert outcome.ok


def test_generate_guard_with_positive_and_negative_specs():
    app = build_blog_app()
    User = app.models["User"]
    problem = define(
        "guarded", "(Str) -> Bool", consts=[True, False, User],
        class_table=app.class_table, reset=app.reset,
    )

    def setup_present(ctx):
        seed_blog(app)
        ctx.invoke("carol")

    def setup_absent(ctx):
        seed_blog(app)
        ctx.invoke("nobody")

    postcond = lambda ctx, r: ctx.assert_(lambda: True)  # noqa: E731
    present = problem.add_spec("present", setup_present, postcond)
    absent = problem.add_spec("absent", setup_absent, postcond)

    guard = generate_guard(problem, [present], [absent], SynthConfig(timeout_s=20))
    assert guard is not None
    assert evaluate_guard(problem, guard, present, expect=True)
    assert evaluate_guard(problem, guard, absent, expect=False)
    # true alone cannot distinguish, so the guard must be something real.
    assert guard != A.TRUE


def test_exploration_order_fifo_still_solves(blog_problem):
    config = SynthConfig(timeout_s=20, exploration_order=ORDER_FIFO)
    expr = generate_for_spec(blog_problem, blog_problem.specs[0], config)
    assert expr is not None


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------


def test_merge_single_solution_is_unwrapped(blog_problem):
    config = SynthConfig(timeout_s=20)
    spec = blog_problem.specs[0]
    expr = generate_for_spec(blog_problem, spec, config)
    merger = Merger(blog_problem, config, Budget(20))
    program = merger.merge([SpecSolution(expr=expr, specs=(spec,))])
    assert program is not None
    assert not isinstance(program.body, A.If)


def test_merge_produces_branching_program_for_s5():
    from repro.benchmarks import get_benchmark

    benchmark = get_benchmark("S5")
    problem = benchmark.build()
    result = synthesize(problem, benchmark.make_config(SynthConfig(timeout_s=60)))
    assert result.success
    assert result.paths == 2
    assert isinstance(result.program.body, A.If)


def test_merge_folds_boolean_branches_for_s7():
    from repro.benchmarks import get_benchmark

    benchmark = get_benchmark("S7")
    problem = benchmark.build()
    result = synthesize(problem, benchmark.make_config(SynthConfig(timeout_s=60)))
    assert result.success
    assert result.paths == 1
    assert not isinstance(result.program.body, A.If)


# ---------------------------------------------------------------------------
# DSL and goal plumbing
# ---------------------------------------------------------------------------


def test_define_parses_signature_and_params(blog_problem):
    assert blog_problem.arg_types == (T.STRING,)
    assert blog_problem.ret_type == T.ClassType("User")
    assert blog_problem.params == ("arg0",)
    assert blog_problem.param_env == {"arg0": T.STRING}


def test_spec_builder_requires_both_blocks(blog_problem):
    builder = blog_problem.spec("incomplete")
    with pytest.raises(ValueError):
        builder.build()


def test_constant_exprs_conversion(blog_problem):
    exprs = dict(blog_problem.constant_exprs())
    assert A.TRUE in exprs
    assert A.ConstRef("User") in exprs


def test_evaluate_spec_counts_passed_asserts(blog_problem):
    spec = blog_problem.specs[0]
    program = blog_problem.make_program(A.call(A.ConstRef("User"), "first"))
    outcome = evaluate_spec(blog_problem, program, spec)
    assert not outcome.ok
    assert outcome.passed_asserts == 0
    assert outcome.has_effect_error  # the username read is captured


def test_evaluate_spec_runtime_error_is_not_effect_error(blog_problem):
    spec = blog_problem.specs[0]
    program = blog_problem.make_program(A.call(A.NIL, "name"))
    outcome = evaluate_spec(blog_problem, program, spec)
    assert not outcome.ok
    assert not outcome.has_effect_error


def test_synthesize_reports_timeout_on_impossible_goal():
    app = build_blog_app()
    problem = define(
        "impossible", "(Str) -> Str", consts=[], class_table=app.class_table,
        reset=app.reset,
    )
    problem.add_spec(
        "unsatisfiable",
        lambda ctx: ctx.invoke("x"),
        lambda ctx, r: ctx.assert_(lambda: False),
    )
    result = synthesize(problem, SynthConfig(timeout_s=0.5))
    assert not result.success
    assert result.timed_out or result.program is None
