"""Tests for the RDL-style signature string parser."""

from __future__ import annotations

import pytest

from repro.lang import types as T
from repro.typesys.sigparser import SignatureError, parse_method_sig, parse_type, tokenize


def test_tokenize_simple():
    kinds = [t.kind for t in tokenize("(Str) -> Post")]
    assert kinds == ["lparen", "name", "rparen", "arrow", "name", "eof"]


def test_tokenize_rejects_garbage():
    with pytest.raises(SignatureError):
        tokenize("Str $ Int")


def test_parse_simple_class():
    assert parse_type("Post") == T.ClassType("Post")


def test_parse_aliases():
    assert parse_type("Str") == T.STRING
    assert parse_type("Int") == T.INT
    assert parse_type("Bool") == T.BOOL
    assert parse_type("%bool") == T.BOOL


def test_parse_union():
    assert parse_type("User or Nil") == T.union(T.ClassType("User"), T.NIL)


def test_parse_nested_union():
    result = parse_type("Str or Int or Nil")
    assert T.is_subtype(T.STRING, result)
    assert T.is_subtype(T.INT, result)
    assert T.is_subtype(T.NIL, result)


def test_parse_singleton_class():
    assert parse_type("Class<Post>") == T.SingletonClassType("Post")


def test_parse_symbol_type():
    assert parse_type(":title") == T.SymbolType("title")


def test_parse_namespaced_class():
    assert parse_type("ActiveRecord::Base") == T.ClassType("ActiveRecord::Base")


def test_parse_finite_hash_required_and_optional():
    result = parse_type("{author: Str, title: ?Str}")
    assert isinstance(result, T.FiniteHashType)
    assert result.required_map == {"author": T.STRING}
    assert result.optional_map == {"title": T.STRING}


def test_parse_empty_hash():
    result = parse_type("{}")
    assert isinstance(result, T.FiniteHashType)
    assert result.all_keys == {}


def test_parse_hash_duplicate_key_rejected():
    with pytest.raises(SignatureError):
        parse_type("{a: Str, a: Int}")


def test_parse_parenthesised_type():
    assert parse_type("(Str)") == T.STRING


def test_parse_method_sig_overview_example():
    args, ret = parse_method_sig(
        "(Str, Str, {author: ?Str, title: ?Str, slug: ?Str}) -> Post"
    )
    assert len(args) == 3
    assert args[0] == T.STRING
    assert isinstance(args[2], T.FiniteHashType)
    assert set(args[2].optional_map) == {"author", "title", "slug"}
    assert ret == T.ClassType("Post")


def test_parse_method_sig_zero_args():
    args, ret = parse_method_sig("() -> Bool")
    assert args == ()
    assert ret == T.BOOL


def test_parse_method_sig_single_arg_shorthand():
    args, ret = parse_method_sig("Str -> Post")
    assert args == (T.STRING,)
    assert ret == T.ClassType("Post")


def test_parse_method_sig_unicode_arrow():
    args, ret = parse_method_sig("(Int) → User")
    assert args == (T.INT,)
    assert ret == T.ClassType("User")


def test_parse_method_sig_union_return():
    _, ret = parse_method_sig("(Str) -> User or Nil")
    assert T.is_subtype(T.NIL, ret)


def test_parse_method_sig_trailing_garbage_rejected():
    with pytest.raises(SignatureError):
        parse_method_sig("(Str) -> Post extra")


def test_parse_method_sig_missing_arrow_rejected():
    with pytest.raises(SignatureError):
        parse_method_sig("(Str) Post")


def test_parse_type_trailing_garbage_rejected():
    with pytest.raises(SignatureError):
        parse_type("Str Int")


def test_method_names_with_bang_and_question():
    # Names like "exists?" appear in documentation strings; the tokenizer
    # accepts them as single tokens.
    tokens = tokenize("exists? use!")
    assert [t.text for t in tokens[:-1]] == ["exists?", "use!"]
