"""The example scripts must run end to end (they double as documentation)."""

from __future__ import annotations

import runpy
import sys

import pytest

EXAMPLES_DIR = "examples"


def _run(path: str) -> None:
    runpy.run_path(path, run_name="__main__")


def test_quickstart_example(capsys):
    _run(f"{EXAMPLES_DIR}/quickstart.py")
    out = capsys.readouterr().out
    assert "def user_exists" in out


def test_parallel_sweep_example(capsys):
    _run(f"{EXAMPLES_DIR}/parallel_sweep.py")
    out = capsys.readouterr().out
    assert "across 2 workers" in out
    assert "store hits" in out


def test_traced_run_example(capsys):
    _run(f"{EXAMPLES_DIR}/traced_run.py")
    out = capsys.readouterr().out
    assert "phase wall time" in out
    assert "phase coverage" in out
    assert "chrome trace written to" in out


@pytest.mark.slow
def test_update_post_example(capsys):
    _run(f"{EXAMPLES_DIR}/update_post.py")
    out = capsys.readouterr().out
    assert "def update_post" in out
    assert "Post.exists?" in out


@pytest.mark.slow
def test_gitlab_issues_example(capsys):
    _run(f"{EXAMPLES_DIR}/gitlab_issues.py")
    out = capsys.readouterr().out
    assert "A7" in out and "A8" in out
    assert "state='closed'" in out or 'state="closed"' in out.replace("'", '"')


@pytest.mark.slow
def test_effect_precision_example(capsys):
    _run(f"{EXAMPLES_DIR}/effect_precision.py")
    out = capsys.readouterr().out
    assert "precise" in out
    assert "purity" in out
