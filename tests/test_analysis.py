"""Tests for the static effect analysis subsystem (repro.analysis):
footprint inference, the pre-evaluation pruner, the annotation linter and
the dynamic-vs-static soundness gate."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.lang import ast as A
from repro.lang import types as T
from repro.lang import effects as E
from repro.apps.blog import build_blog_app, seed_blog
from repro.analysis import (
    StaticPruner,
    TOP_PAIR,
    footprint,
    infer,
    lint_class_table,
    lint_problem,
    writers_for_effect,
)
from repro.analysis.soundness import check_benchmark, check_expr_against_specs, search_candidates
from repro.interp.effect_log import log_effect
from repro.synth import SynthConfig, define, synthesize
from repro.synth.config import default_static_pruning
from repro.synth.effect_guided import insert_effect_hole
from repro.typesys.class_table import ClassTable, MethodSig
from repro.typesys.typecheck import SynTypeError


# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------


def _make_blog_problem(app):
    User = app.models["User"]
    problem = define(
        "find_user",
        "(Str) -> User",
        consts=[True, False, User],
        class_table=app.class_table,
        reset=app.reset,
        database=app.database,
    )

    def setup(ctx):
        seed_blog(app)
        ctx.invoke("carol")

    def postcond(ctx, result):
        ctx.assert_(lambda: result.username == "carol")

    problem.add_spec("finds carol", setup, postcond)
    return problem


@pytest.fixture()
def blog_app():
    return build_blog_app()


@pytest.fixture()
def blog_problem(blog_app):
    return _make_blog_problem(blog_app)


def _first_user():
    return A.call(A.ConstRef("User"), "first")


def _rename_user(value: A.Node):
    return A.call(_first_user(), "username=", value)


# ---------------------------------------------------------------------------
# Footprint inference
# ---------------------------------------------------------------------------


def test_footprint_literals_and_vars_are_pure(blog_problem):
    ct = blog_problem.class_table
    for expr in (A.NIL, A.TRUE, A.IntLit(3), A.StrLit("x"), A.Var("arg0")):
        assert footprint(expr, {"arg0": T.STRING}, ct).is_pure


def test_footprint_unbound_var_widens_to_top(blog_problem):
    ct = blog_problem.class_table
    assert footprint(A.Var("ghost"), {}, ct) == TOP_PAIR
    with pytest.raises(SynTypeError):
        infer(A.Var("ghost"), {}, ct)


def test_footprint_call_uses_resolved_annotations(blog_problem):
    ct = blog_problem.class_table
    read_pair = footprint(_first_user(), {}, ct)
    assert not read_pair.read.is_pure
    assert read_pair.write.is_pure
    write_pair = footprint(_rename_user(A.StrLit("x")), {}, ct)
    assert E.subsumed(E.Effect.of("User.username"), write_pair.write, ct)


def test_footprint_seq_and_let_union_children(blog_problem):
    ct = blog_problem.class_table
    seq = A.Seq(_first_user(), _rename_user(A.StrLit("x")))
    pair = footprint(seq, {}, ct)
    assert not pair.read.is_pure and not pair.write.is_pure
    let = A.Let("t", _first_user(), A.call(A.Var("t"), "username=", A.StrLit("x")))
    pair = footprint(let, {}, ct)
    assert E.subsumed(E.Effect.of("User.username"), pair.write, ct)


def test_footprint_if_is_path_insensitive(blog_problem):
    ct = blog_problem.class_table
    expr = A.If(A.TRUE, _rename_user(A.StrLit("x")), A.NIL)
    assert not footprint(expr, {}, ct).write.is_pure


def test_footprint_holes_are_top(blog_problem):
    ct = blog_problem.class_table
    assert footprint(A.TypedHole(T.STRING), {}, ct) == TOP_PAIR
    assert footprint(A.EffectHole(E.Effect.of("User.name")), {}, ct) == TOP_PAIR
    # And TOP propagates through compound nodes.
    assert footprint(A.Seq(A.NIL, A.TypedHole(T.STRING)), {}, ct).read.is_star


def test_footprint_memo_hits_and_generation_invalidation(blog_problem):
    ct = blog_problem.class_table
    expr = A.Seq(_first_user(), _first_user())
    stats = SimpleNamespace(footprint_hits=0)
    first = footprint(expr, {}, ct, stats)
    hits_after_first = stats.footprint_hits
    assert footprint(expr, {}, ct, stats) == first
    assert stats.footprint_hits > hits_after_first
    # Any table mutation moves the generation, so the memo misses once...
    ct.add_class("ScratchClass")
    hits_before = stats.footprint_hits
    assert footprint(expr, {}, ct, stats) == first
    # ...then warms back up for the new generation.
    rewarmed = stats.footprint_hits
    footprint(expr, {}, ct, stats)
    assert stats.footprint_hits > rewarmed
    assert hits_before <= rewarmed  # the miss itself added no hit at the root


def test_writers_for_effect_prefilter(blog_problem):
    ct = blog_problem.class_table
    writers = writers_for_effect(E.Effect.of("User.name"), ct)
    names = {resolved.sig.qualified_name for resolved in writers}
    assert "User#name=" in names
    assert "Post#title=" not in names
    for resolved in writers:
        assert not resolved.effects.write.is_pure
        assert E.subsumed(E.Effect.of("User.name"), resolved.effects.write, ct)
    # Second lookup for the same (generation, effect) is memoized.
    stats = SimpleNamespace(footprint_hits=0)
    assert writers_for_effect(E.Effect.of("User.name"), ct, stats) == writers
    assert stats.footprint_hits == 1


# ---------------------------------------------------------------------------
# Pre-evaluation pruner
# ---------------------------------------------------------------------------


def test_pruner_discards_leading_literals(blog_problem):
    pruner = StaticPruner(blog_problem)
    expr = _first_user()
    assert pruner.key_for(A.Seq(A.NIL, expr)) == pruner.key_for(expr)
    assert pruner.key_for(A.Seq(A.TRUE, A.Seq(A.IntLit(0), expr))) == pruner.key_for(expr)


def test_pruner_eta_and_dead_let(blog_problem):
    pruner = StaticPruner(blog_problem)
    call = _first_user()
    assert pruner.key_for(A.Let("t", call, A.Var("t"))) == pruner.key_for(call)
    # A dead binding of a literal disappears; of a computation it stays
    # sequenced for its effects.
    assert pruner.key_for(A.Let("t", A.NIL, A.Var("arg0"))) == pruner.key_for(A.Var("arg0"))
    assert pruner.key_for(A.Let("t", call, A.Var("arg0"))) == pruner.key_for(
        A.Seq(call, A.Var("arg0"))
    )


def test_pruner_keeps_non_literal_discards(blog_problem):
    pruner = StaticPruner(blog_problem)
    expr = _first_user()
    # Variables and constant references are not erased (a ConstRef can raise).
    assert pruner.key_for(A.Seq(A.Var("arg0"), expr)) != pruner.key_for(expr)
    assert pruner.key_for(A.Seq(A.ConstRef("User"), expr)) != pruner.key_for(expr)


def test_pruner_outcome_memo_roundtrip(blog_problem):
    pruner = StaticPruner(blog_problem)
    outcome = SimpleNamespace(error=None)
    key = pruner.key_for(A.Seq(A.NIL, _first_user()))
    assert pruner.outcome_for(key) is None
    pruner.record(key, outcome)
    assert pruner.outcome_for(pruner.key_for(_first_user())) is outcome


def test_pruner_witnessed_prefix_strip(blog_problem):
    pruner = StaticPruner(blog_problem)
    prefix = _first_user()  # write-pure
    suffix = A.Var("arg0")
    combined = A.Seq(prefix, suffix)
    # No witness yet: the prefix must stay.
    assert pruner.key_for(combined) != pruner.key_for(suffix)
    # A completing witness (error=None) for a write-pure prefix strips it.
    pruner.record(pruner.key_for(prefix), SimpleNamespace(error=None))
    assert pruner.key_for(combined) == pruner.key_for(suffix)


def test_pruner_never_strips_crashing_or_writing_prefixes(blog_problem):
    pruner = StaticPruner(blog_problem)
    crashing = _first_user()
    suffix = A.Var("arg0")
    pruner.record(pruner.key_for(crashing), SimpleNamespace(error=RuntimeError("boom")))
    assert pruner.key_for(A.Seq(crashing, suffix)) != pruner.key_for(suffix)
    writing = _rename_user(A.StrLit("x"))
    pruner.record(pruner.key_for(writing), SimpleNamespace(error=None))
    assert pruner.key_for(A.Seq(writing, suffix)) != pruner.key_for(suffix)


def test_pruner_write_pure_uses_footprint(blog_problem):
    pruner = StaticPruner(blog_problem)
    assert pruner.write_pure(_first_user())
    assert not pruner.write_pure(_rename_user(A.Var("arg0")))
    # Untypeable expressions widen to TOP, which is never write-pure.
    assert not pruner.write_pure(A.Var("ghost"))


# ---------------------------------------------------------------------------
# Search integration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["compiled", "tree"])
def test_static_pruning_is_transparent_and_cheaper(backend):
    results = {}
    for enabled in (False, True):
        problem = _make_blog_problem(build_blog_app())
        config = SynthConfig(
            timeout_s=30, eval_backend=backend, static_pruning=enabled
        )
        results[enabled] = synthesize(problem, config)
    off, on = results[False], results[True]
    assert off.success and on.success
    assert off.program == on.program  # byte-identical synthesis
    ops_off = off.stats.evaluated + off.stats.state_restores - off.stats.state_pure_skips
    ops_on = on.stats.evaluated + on.stats.state_restores - on.stats.state_pure_skips
    assert ops_on < ops_off
    assert on.stats.state_pure_skips > 0
    assert off.stats.state_pure_skips == 0 and off.stats.static_prunes == 0


def test_static_pruning_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_STATIC_PRUNING", raising=False)
    assert default_static_pruning()
    assert SynthConfig().static_pruning
    monkeypatch.setenv("REPRO_STATIC_PRUNING", "0")
    assert not default_static_pruning()
    assert not SynthConfig().static_pruning
    monkeypatch.setenv("REPRO_STATIC_PRUNING", "yes")
    assert SynthConfig().static_pruning


def test_insert_effect_hole_counts_type_fallbacks(blog_problem):
    stats = SimpleNamespace(effect_type_fallbacks=0, footprint_hits=0)
    insert_effect_hole(_first_user(), E.Effect.of("User.name"), blog_problem, stats)
    assert stats.effect_type_fallbacks == 0
    # An untypeable candidate falls back to the goal's return type -- counted.
    insert_effect_hole(A.Var("ghost"), E.Effect.of("User.name"), blog_problem, stats)
    assert stats.effect_type_fallbacks == 1


# ---------------------------------------------------------------------------
# Soundness gate
# ---------------------------------------------------------------------------


def test_soundness_clean_on_blog_candidates(blog_problem):
    state = blog_problem.state_manager()
    for expr in search_candidates(blog_problem, limit=25):
        assert not check_expr_against_specs(blog_problem, expr, state=state)


def test_soundness_gate_catches_lying_annotation():
    app = build_blog_app()
    app.class_table.add_method(
        MethodSig(
            owner="User",
            name="covert_touch",
            arg_types=(),
            ret_type=T.STRING,
            effects=E.EffectPair.pure(),  # the lie: the impl writes below
            singleton=True,
            impl=lambda interp, recv: log_effect(
                write=E.Effect.region("User", "name")
            ),
            synthesis=False,
        )
    )
    problem = define(
        "lying", "(Str) -> Str", class_table=app.class_table, reset=app.reset
    )
    problem.add_spec(
        "touches",
        lambda ctx: ctx.invoke("x"),
        lambda ctx, r: ctx.assert_(lambda: True),
    )
    violations = check_expr_against_specs(
        problem, A.call(A.ConstRef("User"), "covert_touch")
    )
    assert violations
    assert violations[0].static_pair.write.is_pure
    assert not violations[0].dynamic_pair.write.is_pure
    assert "covert_touch" in violations[0].describe()


def test_soundness_check_benchmark_smoke():
    assert check_benchmark("S1", samples=5, seed=0, search_limit=15) == []


# ---------------------------------------------------------------------------
# Annotation linter
# ---------------------------------------------------------------------------


def _rules(findings):
    return {finding.rule for finding in findings}


def test_lint_clean_on_real_app(blog_problem):
    assert lint_class_table(blog_problem.class_table) == []
    assert lint_problem(blog_problem) == []


def test_lint_flags_unknown_effect_class(blog_app):
    ct = blog_app.class_table
    ct.add_method(
        MethodSig(
            owner="Post",
            name="typo_cls",
            arg_types=(),
            ret_type=T.STRING,
            effects=E.EffectPair.of(read="Postt.title"),
        )
    )
    findings = lint_class_table(ct)
    assert "unknown-effect-class" in _rules(findings)
    assert any("Postt" in f.message for f in findings)


def test_lint_flags_unknown_effect_region(blog_app):
    ct = blog_app.class_table
    ct.add_method(
        MethodSig(
            owner="Post",
            name="typo_region",
            arg_types=(),
            ret_type=T.STRING,
            effects=E.EffectPair.of(read="Post.titel"),
        )
    )
    findings = lint_class_table(ct)
    assert "unknown-effect-region" in _rules(findings)
    assert any("titel" in f.message and "title" in f.message for f in findings)


def test_lint_flags_pure_writer(blog_app):
    ct = blog_app.class_table
    ct.add_method(
        MethodSig(
            owner="Post",
            name="archive!",
            arg_types=(),
            ret_type=T.BOOL,
            effects=E.EffectPair.pure(),
            impl=lambda interp, recv: True,
        )
    )
    findings = lint_class_table(ct)
    assert any(
        f.rule == "pure-writer" and f.subject == "Post#archive!" for f in findings
    )
    # Comparison/negation operators are exempt (they end in = / ! by syntax).
    assert not any(
        f.rule == "pure-writer" and f.subject.endswith("#==") for f in findings
    )


def test_lint_flags_impl_arity_mismatch(blog_app):
    ct = blog_app.class_table
    ct.add_method(
        MethodSig(
            owner="Post",
            name="frob",
            arg_types=(T.STRING,),
            ret_type=T.STRING,
            effects=E.EffectPair.pure(),
            impl=lambda interp: "x",  # calls pass (interp, recv, arg)
        )
    )
    findings = lint_class_table(ct)
    assert any(
        f.rule == "impl-arity" and f.subject == "Post#frob" for f in findings
    )
    # Var-positional impls accept anything and are not flagged.
    ct.add_method(
        MethodSig(
            owner="Post",
            name="frob2",
            arg_types=(T.STRING,),
            ret_type=T.STRING,
            effects=E.EffectPair.pure(),
            impl=lambda *args: "x",
        )
    )
    assert not any(f.subject == "Post#frob2" for f in lint_class_table(ct))


def test_lint_flags_unwritten_region():
    ct = ClassTable()
    ct.add_class("Gauge")
    ct.add_method(
        MethodSig(
            owner="Gauge",
            name="level",
            arg_types=(),
            ret_type=T.INT,
            effects=E.EffectPair.of(read="Gauge.level"),
            impl=lambda interp, recv: 0,
        )
    )
    findings = lint_class_table(ct)
    assert any(
        f.rule == "unwritten-region" and f.subject == "Gauge.level" for f in findings
    )


def test_lint_flags_unsatisfiable_spec():
    ct = ClassTable()
    ct.add_class("Gauge")

    def read_gauge():
        log_effect(read=E.Effect.region("Gauge", "level"))
        return True

    problem = define("gauge_goal", "(Str) -> Str", class_table=ct, reset=lambda: None)
    problem.add_spec(
        "reads the unwritable gauge",
        lambda ctx: ctx.invoke("x"),
        lambda ctx, r: ctx.assert_(read_gauge),
    )
    findings = lint_problem(problem)
    assert any(
        f.rule == "unsatisfiable-spec" and "Gauge.level" in f.message
        for f in findings
    )


# ---------------------------------------------------------------------------
# Alpha-equivalence in the pruner memo (the resolved-binding keys)
# ---------------------------------------------------------------------------


def test_pruner_key_identifies_renamed_lets(blog_problem):
    """Candidates differing only in let names share one memo entry."""

    pruner = StaticPruner(blog_problem)
    call = _first_user()
    # Not eta-reducible (the body uses the binder twice), so the keys
    # exercise alpha-keying rather than collapsing to the same normal form.
    a = A.Let("t0", call, A.Seq(A.Var("t0"), A.Var("t0")))
    b = A.Let("fresh", call, A.Seq(A.Var("fresh"), A.Var("fresh")))
    assert a != b
    assert pruner.key_for(a) == pruner.key_for(b)
    outcome = SimpleNamespace(error=None)
    pruner.record(pruner.key_for(a), outcome)
    assert pruner.outcome_for(pruner.key_for(b)) is outcome


def test_pruner_key_keeps_free_variables_distinct(blog_problem):
    pruner = StaticPruner(blog_problem)
    a = A.Let("t", A.Var("arg0"), A.Seq(A.Var("t"), A.Var("t")))
    b = A.Let("t", A.Var("arg1"), A.Seq(A.Var("t"), A.Var("t")))
    assert pruner.key_for(a) != pruner.key_for(b)


def test_pruner_witness_strip_is_alpha_invariant(blog_problem):
    """A witness recorded under one let-name strips renamed prefixes too."""

    pruner = StaticPruner(blog_problem)
    call = _first_user()
    prefix_a = A.Let("t0", call, A.Seq(A.Var("t0"), A.Var("t0")))
    prefix_b = A.Let("x", call, A.Seq(A.Var("x"), A.Var("x")))
    suffix = A.Var("arg0")
    pruner.record(pruner.key_for(prefix_a), SimpleNamespace(error=None))
    assert pruner.key_for(A.Seq(prefix_b, suffix)) == pruner.key_for(suffix)


def test_search_shares_memo_across_renamed_candidates(blog_problem):
    """End-to-end: static_prunes counts renamed-let duplicates as hits."""

    from repro.synth.search import SearchStats
    from repro.synth.goal import evaluate_spec

    stats = SearchStats()
    pruner = StaticPruner(blog_problem, stats)
    call = _first_user()
    spec = blog_problem.specs[0]
    manager = blog_problem.state_manager()
    seen = 0
    for name in ("t0", "t1", "renamed"):
        candidate = A.Let(name, call, A.Seq(A.Var(name), A.Var(name)))
        key = pruner.key_for(candidate)
        hit = pruner.outcome_for(key)
        if hit is not None:
            stats.static_prunes += 1
            seen += 1
            continue
        program = blog_problem.make_program(candidate)
        outcome = evaluate_spec(blog_problem, program, spec, state=manager)
        pruner.record(key, outcome)
    assert seen == 2 and stats.static_prunes == 2


# ---------------------------------------------------------------------------
# Writer ordering (most-specific-first) and the reorder counter
# ---------------------------------------------------------------------------


def test_writers_for_effect_most_specific_first(blog_problem):
    ct = blog_problem.class_table
    writers = writers_for_effect(E.Effect.of("User.name"), ct)

    # Column-precise writers come before class-level, class-level before *.
    def rank(resolved):
        write = resolved.effects.write
        if write.is_star:
            return 2
        if any(region.region is None for region in write.regions):
            return 1
        return 0

    ranks = [rank(resolved) for resolved in writers]
    assert ranks == sorted(ranks)


def test_writer_reorders_counter(blog_problem):
    """A declaration order that is not specificity order is counted."""

    from repro.corelib import register_corelib
    from repro.lang.effects import EffectPair

    ct = ClassTable()
    register_corelib(ct)
    ct.add_class("Doc")
    # Declared coarse-first: the star writer, then class-level, then the
    # column-precise one -- the specificity sort must reverse the scan.
    ct.add_method(MethodSig(
        owner="Doc", name="wipe_all", singleton=True,
        arg_types=(), ret_type=T.NIL,
        effects=EffectPair(read=E.Effect.pure(), write=E.Effect.star()),
        impl=lambda interp, recv: None, synthesis=True,
    ))
    ct.add_method(MethodSig(
        owner="Doc", name="touch", singleton=True,
        arg_types=(), ret_type=T.NIL,
        effects=EffectPair(read=E.Effect.pure(), write=E.Effect.of("Doc")),
        impl=lambda interp, recv: None, synthesis=True,
    ))
    ct.add_method(MethodSig(
        owner="Doc", name="retitle", singleton=True,
        arg_types=(T.STRING,), ret_type=T.NIL,
        effects=EffectPair(read=E.Effect.pure(), write=E.Effect.of("Doc.title")),
        impl=lambda interp, recv, v: None, synthesis=True,
    ))
    stats = SimpleNamespace(footprint_hits=0, writer_reorders=0)
    writers = writers_for_effect(E.Effect.of("Doc.title"), ct, stats)
    names = [resolved.sig.qualified_name for resolved in writers]
    assert names.index("Doc.retitle") < names.index("Doc.touch") < names.index(
        "Doc.wipe_all"
    )
    assert stats.writer_reorders == 1
    # Memo hits re-count the reorder, so merged parallel counters match a
    # serial run's.
    writers_for_effect(E.Effect.of("Doc.title"), ct, stats)
    assert stats.writer_reorders == 2 and stats.footprint_hits == 1
