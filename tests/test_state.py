"""Tests for the state-management subsystem (repro.synth.state) and the
database-layer guarantees it builds on: the ``Table.update`` id-override
fix, the exact snapshot/restore round-trip (rows, ``next_id``, globals),
deep-copied row boundaries, copy-on-write restores, recording/replay
equivalence across every registered benchmark app, batched
``evaluate_all_specs``, and invalidation via ``rebind_reset``."""

from __future__ import annotations

import copy

import pytest

from repro.activerecord.database import Database
from repro.apps.blog import build_blog_app, seed_blog
from repro.apps.diaspora import build_diaspora_app, seed_invitations, seed_pods
from repro.apps.discourse import build_discourse_app, seed_users
from repro.apps.gitlab import build_gitlab_app, seed_issues, seed_two_factor_user
from repro.benchmarks import all_benchmarks, get_benchmark, run_benchmark
from repro.lang import ast as A
from repro.lang.values import HashValue, Symbol
from repro.synth import SynthConfig, define, synthesize
from repro.synth.goal import evaluate_all_specs, evaluate_spec
from repro.synth.state import StateManager


# ---------------------------------------------------------------------------
# Table.update id-override regression
# ---------------------------------------------------------------------------


def test_update_strips_id_override():
    db = Database()
    row = db.insert("posts", title="a")
    updated = db.update("posts", row["id"], id=99, title="b")
    assert updated["id"] == row["id"]
    assert updated["title"] == "b"


def test_update_id_override_keeps_get_delete_consistent():
    db = Database()
    row = db.insert("posts", title="a")
    db.update("posts", row["id"], id=42)
    # The stored id must still match its key in rows: lookups by the
    # original id hit, lookups by the attempted override miss.
    assert db.get("posts", row["id"])["id"] == row["id"]
    assert db.get("posts", 42) is None
    assert db.delete("posts", row["id"]) is True


# ---------------------------------------------------------------------------
# Snapshot/restore round-trip (next_id, globals, late tables)
# ---------------------------------------------------------------------------


def test_snapshot_restores_next_id():
    db = Database()
    first = db.insert("posts", title="a")
    second = db.insert("posts", title="b")
    db.delete("posts", second["id"])
    snap = db.snapshot()
    db.restore(snap)
    third = db.insert("posts", title="c")
    # Ids handed out before the snapshot are never reused after a restore.
    assert third["id"] == 3
    assert first["id"] == 1 and second["id"] == 2


def test_snapshot_restore_round_trip_is_exact():
    db = Database()
    db.insert("posts", title="a", tags=["x"])
    db.set_global("mode", {"strict": True})
    snap = db.snapshot()
    db.insert("posts", title="b")
    db.insert("comments", body="later table")
    db.set_global("mode", {"strict": False})
    db.restore(snap)
    assert db.snapshot() == snap
    assert db.count("posts") == 1
    # Tables created after the capture are cleared by the restore.
    assert db.count("comments") == 0


def test_snapshot_globals_are_independent():
    db = Database()
    db.set_global("config", {"limit": 1})
    snap = db.snapshot()
    db.get_global("config")["limit"] = 2
    db.restore(snap)
    assert db.get_global("config") == {"limit": 1}


# ---------------------------------------------------------------------------
# Copy-on-write globals (atomic values share the dict with the snapshot)
# ---------------------------------------------------------------------------


def test_atomic_globals_are_shared_cow_with_snapshot():
    db = Database()
    db.set_global("mode", "fast")
    snap = db.snapshot()
    # All-atomic globals: the snapshot adopts the live dict by reference...
    assert snap["globals"] is db._globals
    # ...and the next write un-shares it instead of corrupting the snapshot.
    db.set_global("mode", "slow")
    assert snap["globals"] == {"mode": "fast"}
    assert db.get_global("mode") == "slow"


def test_restore_adopts_globals_cow_and_survives_writes():
    db = Database()
    db.set_global("a", 1)
    snap = db.snapshot()
    db.set_global("a", 2)
    db.set_global("b", 3)
    db.restore(snap)
    assert db.get_global("a") == 1 and db.get_global("b") is None
    db.set_global("b", 4)
    db.delete_global("a")
    # The snapshot stays valid across any number of restores.
    db.restore(snap)
    assert db.get_global("a") == 1 and db.get_global("b") is None
    assert snap["globals"] == {"a": 1}


def test_reset_does_not_corrupt_shared_globals_snapshot():
    db = Database()
    db.set_global("a", 1)
    snap = db.snapshot()
    db.reset()
    assert db.get_global("a") is None
    assert snap["globals"] == {"a": 1}
    db.restore(snap)
    assert db.get_global("a") == 1


def test_mutable_global_values_keep_eager_snapshot_copies():
    db = Database()
    db.set_global("tags", ["x"])
    snap = db.snapshot()
    # A mutable value could be mutated in place through get_global, which
    # dict-level sharing cannot see: the legacy eager copy must kick in.
    assert snap["globals"] is not db._globals
    db.get_global("tags").append("y")
    assert snap["globals"]["tags"] == ["x"]


# ---------------------------------------------------------------------------
# Deep-copied row boundaries (no aliasing of nested values)
# ---------------------------------------------------------------------------


def test_insert_does_not_alias_input_values():
    db = Database()
    values = {"title": "a", "tags": ["x"]}
    db.insert("posts", **values)
    values["tags"].append("y")
    assert db.get("posts", 1)["tags"] == ["x"]


def test_returned_rows_do_not_alias_stored_state():
    db = Database()
    db.insert("posts", title="a", tags=["x"])
    db.get("posts", 1)["tags"].append("via-get")
    db.all("posts")[0]["tags"].append("via-all")
    db.select("posts", lambda r: True)[0]["tags"].append("via-select")
    assert db.get("posts", 1)["tags"] == ["x"]


def test_update_values_are_deep_copied():
    db = Database()
    db.insert("posts", title="a", tags=[])
    tags = ["x"]
    db.update("posts", 1, tags=tags)
    tags.append("y")
    assert db.get("posts", 1)["tags"] == ["x"]


def test_cow_update_does_not_corrupt_snapshot():
    db = Database()
    db.insert("posts", title="a")
    db.insert("posts", title="b")
    snap = db.snapshot()
    db.restore(snap)
    db.update("posts", 1, title="mutated")
    assert db.get("posts", 1)["title"] == "mutated"
    db.restore(snap)
    assert db.get("posts", 1)["title"] == "a"
    assert db.get("posts", 2)["title"] == "b"


def test_symbols_survive_deepcopy_interned():
    value = HashValue.of(title="Foo", author="bar")
    clone = copy.deepcopy(value)
    assert clone == value
    assert next(iter(clone)) is Symbol("title")


# ---------------------------------------------------------------------------
# Snapshot/restore equivalence vs. reset-closure replay, per app substrate
# ---------------------------------------------------------------------------


_APP_SEEDS = [
    pytest.param(build_blog_app, seed_blog, id="blog"),
    pytest.param(build_gitlab_app, seed_issues, id="gitlab-issues"),
    pytest.param(build_gitlab_app, seed_two_factor_user, id="gitlab-2fa"),
    pytest.param(build_discourse_app, seed_users, id="discourse"),
    pytest.param(build_diaspora_app, seed_pods, id="diaspora-pods"),
    pytest.param(build_diaspora_app, seed_invitations, id="diaspora-invites"),
]


@pytest.mark.parametrize("builder, seeder", _APP_SEEDS)
def test_snapshot_restore_matches_reset_replay(builder, seeder):
    app = builder()
    seeder(app)
    seeded = app.database.snapshot()

    # Mutate: the restore must erase inserts, updates, deletes and globals.
    model = next(iter(app.models.values()))
    rows = app.database.all(model.table_name)
    if rows:
        app.database.update(model.table_name, rows[0]["id"], **{})
        app.database.delete(model.table_name, rows[-1]["id"])
    app.database.insert(model.table_name)
    app.database.set_global("dirty", True)

    app.database.restore(seeded)
    assert app.database.snapshot() == seeded

    # Equivalence with the reset-closure replay the snapshot replaces.
    app.reset()
    seeder(app)
    assert app.database.snapshot() == seeded


# ---------------------------------------------------------------------------
# StateManager recording and replay
# ---------------------------------------------------------------------------


def _blog_problem(**spec_kwargs):
    app = build_blog_app()
    User = app.models["User"]
    problem = define(
        "find_user",
        "(Str) -> User",
        consts=[True, False, User],
        class_table=app.class_table,
        reset=app.reset,
        database=app.database,
    )

    def setup(ctx):
        seed_blog(app)
        ctx.invoke("carol")

    def postcond(ctx, result):
        ctx.assert_(lambda: result.username == "carol")

    problem.add_spec("finds carol", setup, postcond)
    problem.app = app  # type: ignore[attr-defined]
    return problem


def _find_user_program(problem):
    """User.where(username: arg0).first as a lambda-syn method body."""

    body = A.call(
        A.call(A.ConstRef("User"), "where", A.hash_lit(username=A.Var("arg0"))),
        "first",
    )
    return problem.make_program(body)


def test_state_manager_requires_database():
    app = build_blog_app()
    problem = define("f", "(Str) -> Str", class_table=app.class_table, reset=app.reset)
    assert problem.database is None
    assert problem.state_manager() is None


def test_registry_problems_expose_state_manager():
    for benchmark in all_benchmarks():
        problem = benchmark.build()
        assert problem.database is not None, benchmark.id
        manager = problem.state_manager()
        assert isinstance(manager, StateManager)
        # One manager per problem, shared across calls.
        assert problem.state_manager() is manager


def test_record_then_replay_matches_legacy_outcomes():
    problem = _blog_problem()
    state = problem.state_manager()
    program = _find_user_program(problem)
    spec = problem.specs[0]

    recorded = evaluate_spec(problem, program, spec, state=state)
    replayed = evaluate_spec(problem, program, spec, state=state)
    legacy = evaluate_spec(problem, program, spec)

    for outcome in (recorded, replayed):
        assert outcome.ok is legacy.ok is True
        assert outcome.passed_asserts == legacy.passed_asserts
    assert state.stats.rebuilds == 1
    assert state.stats.restores == 1
    assert state.stats.unreplayable == 0


def test_replay_restores_database_between_failing_candidates():
    problem = _blog_problem()
    state = problem.state_manager()
    spec = problem.specs[0]
    good = _find_user_program(problem)
    # A failing candidate that pollutes the database: User.create(name: ...)
    # inserts a row whose username is nil, so the postcondition rejects it.
    bad = problem.make_program(
        A.call(A.ConstRef("User"), "create", A.hash_lit(name=A.Var("arg0")))
    )

    assert evaluate_spec(problem, good, spec, state=state).ok
    assert not evaluate_spec(problem, bad, spec, state=state).ok
    # The pollution from the failing candidate must not leak into the next.
    assert evaluate_spec(problem, good, spec, state=state).ok
    app = problem.app  # type: ignore[attr-defined]
    assert app.models["User"].count(username="carol") == 1


@pytest.mark.parametrize("bench_spec", all_benchmarks(), ids=lambda b: b.id)
def test_registry_spec_replay_equivalence(bench_spec):
    """Recording, replay and legacy evaluation agree on every registry spec.

    The trivial ``nil`` body exercises setup+postcond without synthesis;
    outcomes (ok, passed assertions, failure/error classification) must be
    identical whether state is rebuilt or restored from a snapshot.
    """

    problem = bench_spec.build()
    state = problem.state_manager()
    program = problem.make_program(A.NIL)
    for spec in problem.specs:
        recorded = evaluate_spec(problem, program, spec, state=state)
        replayed = evaluate_spec(problem, program, spec, state=state)
        legacy = evaluate_spec(problem, program, spec)
        for outcome in (recorded, replayed):
            assert outcome.ok == legacy.ok
            assert outcome.passed_asserts == legacy.passed_asserts
            assert (outcome.failure is None) == (legacy.failure is None)
            assert type(outcome.error) is type(legacy.error)


def test_state_write_after_invoke_is_unreplayable():
    problem = _blog_problem()

    def setup(ctx):
        seed_blog(problem.app)
        ctx.invoke("carol")
        ctx["after"] = "depends-on-candidate"

    def postcond(ctx, result):
        ctx.assert_(lambda: ctx["after"] == "depends-on-candidate")

    problem.specs.clear()
    problem.add_spec("writes state after invoke", setup, postcond)
    state = problem.state_manager()
    program = _find_user_program(problem)
    spec = problem.specs[0]

    first = evaluate_spec(problem, program, spec, state=state)
    second = evaluate_spec(problem, program, spec, state=state)
    assert first.ok and second.ok
    assert state.stats.unreplayable == 1
    assert state.stats.restores == 0
    assert state.stats.rebuilds == 2


def test_database_write_after_invoke_is_unreplayable():
    problem = _blog_problem()
    app = problem.app  # type: ignore[attr-defined]

    def setup(ctx):
        seed_blog(app)
        ctx.invoke("carol")
        app.models["User"].create(name="Late", username="late")

    def postcond(ctx, result):
        ctx.assert_(lambda: app.models["User"].exists(username="late"))

    problem.specs.clear()
    problem.add_spec("seeds after invoke", setup, postcond)
    state = problem.state_manager()
    program = _find_user_program(problem)
    spec = problem.specs[0]

    first = evaluate_spec(problem, program, spec, state=state)
    second = evaluate_spec(problem, program, spec, state=state)
    # Replay would skip the post-invoke insert; the fallback must not.
    assert first.ok and second.ok
    assert state.stats.unreplayable == 1
    assert state.stats.restores == 0


def test_double_invoke_is_unreplayable():
    problem = _blog_problem()
    app = problem.app  # type: ignore[attr-defined]

    def setup(ctx):
        seed_blog(app)
        ctx.invoke("carol")
        ctx.invoke("dummy")

    def postcond(ctx, result):
        ctx.assert_(lambda: result.username == "dummy")

    problem.specs.clear()
    problem.add_spec("invokes twice", setup, postcond)
    state = problem.state_manager()
    program = _find_user_program(problem)
    spec = problem.specs[0]

    assert evaluate_spec(problem, program, spec, state=state).ok
    assert evaluate_spec(problem, program, spec, state=state).ok
    assert state.stats.unreplayable == 1


def test_post_invoke_inplace_state_mutation_is_unreplayable():
    problem = _blog_problem()
    app = problem.app  # type: ignore[attr-defined]

    def setup(ctx):
        seed_blog(app)
        ctx["log"] = []
        ctx.invoke("carol")
        # In-place mutation, invisible to __setitem__: replay would hand the
        # postcondition the empty pre-invoke list.
        ctx["log"].append(ctx.result)

    def postcond(ctx, result):
        ctx.assert_(lambda: len(ctx["log"]) == 1)

    problem.specs.clear()
    problem.add_spec("mutates state in place after invoke", setup, postcond)
    state = problem.state_manager()
    program = _find_user_program(problem)
    spec = problem.specs[0]

    first = evaluate_spec(problem, program, spec, state=state)
    second = evaluate_spec(problem, program, spec, state=state)
    assert first.ok and second.ok
    assert state.stats.unreplayable == 1
    assert state.stats.restores == 0


def test_replay_preserves_identity_between_state_and_invoke_args():
    app = build_blog_app()
    User = app.models["User"]
    problem = define(
        "touch_user",
        "(User) -> User",
        consts=[User],
        class_table=app.class_table,
        reset=app.reset,
        database=app.database,
    )

    def setup(ctx):
        seed_blog(app)
        user = User.find_by(username="carol")
        ctx["user"] = user
        ctx.invoke(user)

    def postcond(ctx, result):
        # Holds only if the replayed ctx["user"] IS the invoke argument,
        # as in a real setup run (the candidate mutates the shared object).
        ctx.assert_(lambda: ctx["user"].name == "Touched")

    problem.add_spec("mutation via shared arg", setup, postcond)
    state = problem.state_manager()
    # arg0.name = "Touched"; returns the user.
    program = problem.make_program(
        A.call(A.Var("arg0"), "name=", A.StrLit("Touched"))
    )

    recorded = evaluate_spec(problem, program, spec := problem.specs[0], state=state)
    replayed = evaluate_spec(problem, program, spec, state=state)
    assert recorded.ok == replayed.ok
    assert state.stats.restores == 1


def test_broken_reset_closure_propagates_as_infrastructure_error():
    problem = _blog_problem()
    program = _find_user_program(problem)
    spec = problem.specs[0]

    def broken_reset():
        raise RuntimeError("reset infrastructure down")

    problem.rebind_reset(broken_reset)
    # Legacy path: the reset crash must reach the caller, not become a
    # memoized candidate failure.
    with pytest.raises(RuntimeError, match="infrastructure down"):
        evaluate_spec(problem, program, spec)
    # State path: the baseline capture replays the reset closure.
    with pytest.raises(RuntimeError, match="infrastructure down"):
        evaluate_spec(problem, program, spec, state=problem.state_manager())


def test_crashing_setup_leaves_no_recording():
    problem = _blog_problem()
    state = problem.state_manager()
    spec = problem.specs[0]
    # arg0.username crashes inside invoke (Str has no username method).
    crashing = problem.make_program(A.call(A.Var("arg0"), "username"))

    outcome = evaluate_spec(problem, crashing, spec, state=state)
    assert not outcome.ok
    assert state.recording_for(spec) is None
    # A later well-behaved candidate records the spec as usual.
    assert evaluate_spec(problem, _find_user_program(problem), spec, state=state).ok
    assert state.recording_for(spec) is not None


def test_rebind_reset_invalidates_recordings_and_baseline():
    problem = _blog_problem()
    app = problem.app  # type: ignore[attr-defined]
    state = problem.state_manager()
    program = _find_user_program(problem)
    spec = problem.specs[0]

    assert evaluate_spec(problem, program, spec, state=state).ok
    assert state.recording_for(spec) is not None

    def new_reset():
        app.database.reset()
        app.models["User"].create(name="Pre", username="pre")

    problem.rebind_reset(new_reset)
    assert state.recording_for(spec) is None
    assert state.stats.invalidations == 1
    # The new baseline (with the pre-seeded user) is observed on re-record.
    outcome = evaluate_spec(problem, program, spec, state=state)
    assert outcome.ok
    assert app.models["User"].exists(username="pre")


def test_evaluate_all_specs_batched_equivalence():
    benchmark = get_benchmark("S4")
    problem = benchmark.build()
    state = problem.state_manager()
    # User.exists?(username: arg0) passes both S4 specs.
    program = problem.make_program(
        A.call(A.ConstRef("User"), "exists?", A.hash_lit(username=A.Var("arg0")))
    )
    assert evaluate_all_specs(problem, program, state=state) is True
    assert evaluate_all_specs(problem, program, state=state) is True
    legacy_problem = benchmark.build()
    assert evaluate_all_specs(legacy_problem, legacy_problem.make_program(
        A.call(A.ConstRef("User"), "exists?", A.hash_lit(username=A.Var("arg0")))
    )) is True
    failing = problem.make_program(A.TRUE)
    assert evaluate_all_specs(problem, failing, state=state) is False


# ---------------------------------------------------------------------------
# End-to-end: snapshots must not change synthesis results
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("benchmark_id", ["S1", "S4", "S5"])
def test_synthesis_identical_with_and_without_snapshots(benchmark_id):
    benchmark = get_benchmark(benchmark_id)
    results = {}
    for snapshots in (False, True):
        config = benchmark.make_config(
            SynthConfig.full(timeout_s=60.0, snapshot_state=snapshots)
        )
        results[snapshots] = synthesize(benchmark.build(), config)
    assert results[False].success and results[True].success
    assert results[False].program == results[True].program
    with_snapshots = results[True]
    assert with_snapshots.stats.state_restores > 0
    # The reset closure ran once (baseline capture) instead of per candidate.
    assert with_snapshots.stats.reset_replays == 1
    assert results[False].stats.reset_replays >= 2 * with_snapshots.stats.reset_replays
    assert results[False].stats.state_restores == 0
    assert results[False].state_stats is None


def test_warm_runner_shares_state_across_runs():
    benchmark = get_benchmark("S1")
    config = SynthConfig.full(timeout_s=60.0)
    warm = run_benchmark(benchmark, config, runs=2)
    assert warm.success
    # Run 2 answers everything from the shared memo and snapshot baseline:
    # the reset closure ran only for run 1's baseline capture.
    assert warm.reset_replays == 1
    cold = run_benchmark(benchmark, config, runs=2, warm_state=False)
    assert cold.success
    assert cold.reset_replays == 2


# ---------------------------------------------------------------------------
# verify_recordings: the opt-in determinism audit
# ---------------------------------------------------------------------------


def test_verify_recordings_passes_on_deterministic_setup():
    problem = _blog_problem()
    state = problem.state_manager()
    state.verify_every = 1  # audit every would-be replay
    program = _find_user_program(problem)
    spec = problem.specs[0]

    recorded = evaluate_spec(problem, program, spec, state=state)
    verified = evaluate_spec(problem, program, spec, state=state)
    assert recorded.ok and verified.ok
    assert state.stats.verifications == 1
    # The verification pass is a full rebuild, not a restore.
    assert state.stats.restores == 0
    assert state.stats.rebuilds == 2


def test_verify_recordings_interval_mixes_replays_and_audits():
    problem = _blog_problem()
    state = problem.state_manager()
    state.verify_every = 2  # every second replay is audited
    program = _find_user_program(problem)
    spec = problem.specs[0]

    for _ in range(5):  # 1 recording + 4 replay slots
        assert evaluate_spec(problem, program, spec, state=state).ok
    assert state.stats.verifications == 2
    assert state.stats.restores == 2


def test_verify_recordings_catches_nondeterministic_setup():
    from repro.synth.state import NondeterministicSetupError

    app = build_blog_app()
    User = app.models["User"]
    problem = define(
        "find_user",
        "(Str) -> User",
        consts=[User],
        class_table=app.class_table,
        reset=app.reset,
        database=app.database,
    )
    calls = {"n": 0}

    def setup(ctx):
        # Violates the determinism contract: each pass seeds a different row.
        calls["n"] += 1
        User.create(name="N", username=f"user{calls['n']}")
        ctx.invoke(f"user{calls['n']}")

    def postcond(ctx, result):
        ctx.assert_(lambda: result is not None)

    problem.add_spec("nondeterministic seed", setup, postcond)
    state = problem.state_manager()
    state.verify_every = 1
    program = _find_user_program(problem)
    spec = problem.specs[0]

    assert evaluate_spec(problem, program, spec, state=state).ok  # records
    with pytest.raises(NondeterministicSetupError):
        evaluate_spec(problem, program, spec, state=state)  # audits


def test_verify_recordings_threaded_from_config():
    from repro.synth.session import SynthesisSession

    with SynthesisSession(SynthConfig(timeout_s=60)) as session:
        result = session.run("S1", verify_recordings=2)
        assert result.success
        manager = session.problem_for("S1").state_manager()
        assert manager.verify_every == 2
        assert manager.stats.verifications > 0
