"""Unit tests for the name-resolution layer (repro.lang.resolve).

The resolver's three products -- sorted free-variable tuples, compile-time
slot assignment and De Bruijn alpha keys -- are the keys every env-sensitive
memo in the engine shares, so their contracts are pinned here directly:
ordering and memoization of ``free_var_tuple``, innermost-wins shadowing in
``slot_of``, alpha-equivalence (and its limits) for ``alpha_key``, and the
pickle behavior of the underscore memo slots.
"""

from __future__ import annotations

import pickle

from repro.lang import ast as A
from repro.lang.resolve import (
    alpha_key,
    free_var_tuple,
    set_slot_frames,
    slot_frames_enabled,
    slot_of,
)


def _let(name, value, body):
    return A.Let(name, value, body)


# ---------------------------------------------------------------------------
# free_var_tuple
# ---------------------------------------------------------------------------


def test_free_var_tuple_is_sorted_and_deduplicated():
    expr = A.Seq(
        A.call(A.Var("zeta"), "+", A.Var("alpha")),
        A.Seq(A.Var("mid"), A.Var("alpha")),
    )
    assert free_var_tuple(expr) == ("alpha", "mid", "zeta")


def test_free_var_tuple_excludes_bound_names():
    expr = _let("v", A.Var("outer"), A.call(A.Var("v"), "+", A.Var("free")))
    assert free_var_tuple(expr) == ("free", "outer")
    # The binder is free in its value position but bound in the body.
    shadow = _let("v", A.Var("v"), A.Var("v"))
    assert free_var_tuple(shadow) == ("v",)


def test_free_var_tuple_matches_free_vars_set():
    expr = A.If(A.Var("c"), _let("x", A.Var("a"), A.Var("x")), A.Var("b"))
    assert free_var_tuple(expr) == tuple(sorted(A.free_vars(expr)))


def test_free_var_tuple_is_memoized_per_node():
    expr = A.call(A.Var("a"), "+", A.Var("b"))
    first = free_var_tuple(expr)
    assert expr.__dict__["_fv_tuple"] is first
    assert free_var_tuple(expr) is first


def test_method_def_body_free_vars_name_the_params():
    # ``free_vars`` is an *expression* primitive: a MethodDef's params are
    # frame bindings supplied by ``call_program``, so they appear free in
    # the body's tuple -- which is exactly the scope the backends run under.
    program = A.MethodDef(
        "m", ("arg0", "arg1"), A.call(A.Var("arg0"), "+", A.Var("stray"))
    )
    assert free_var_tuple(program.body) == ("arg0", "stray")


# ---------------------------------------------------------------------------
# slot_of
# ---------------------------------------------------------------------------


def test_slot_of_simple_scope():
    scope = ("arg0", "arg1")
    assert slot_of(scope, "arg0") == 0
    assert slot_of(scope, "arg1") == 1
    assert slot_of(scope, "zz") is None
    assert slot_of((), "anything") is None


def test_slot_of_shadowing_resolves_innermost():
    # Parameters first, then enclosing lets; the *highest* index wins --
    # exactly the binding the tree walker's innermost-first scan finds.
    scope = ("v", "n", "v")
    assert slot_of(scope, "v") == 2
    assert slot_of(scope, "n") == 1
    assert slot_of(("v", "v", "v"), "v") == 2


def test_slot_frames_toggle_roundtrip():
    ambient = slot_frames_enabled()
    try:
        previous = set_slot_frames(False)
        assert previous == ambient
        assert not slot_frames_enabled()
        assert set_slot_frames(True) is False
        assert slot_frames_enabled()
    finally:
        set_slot_frames(ambient)


# ---------------------------------------------------------------------------
# alpha_key
# ---------------------------------------------------------------------------


def test_alpha_key_identifies_renamed_lets():
    a = _let("a", A.IntLit(1), A.call(A.Var("a"), "+", A.IntLit(2)))
    b = _let("b", A.IntLit(1), A.call(A.Var("b"), "+", A.IntLit(2)))
    assert alpha_key(a) == alpha_key(b)


def test_alpha_key_identifies_renamed_nested_lets():
    a = _let("x", A.IntLit(1), _let("y", A.Var("x"), A.Var("y")))
    b = _let("p", A.IntLit(1), _let("q", A.Var("p"), A.Var("q")))
    assert alpha_key(a) == alpha_key(b)
    # Swapping which binder the inner body references breaks equivalence.
    c = _let("p", A.IntLit(1), _let("q", A.Var("p"), A.Var("p")))
    assert alpha_key(a) != alpha_key(c)


def test_alpha_key_distinguishes_free_variables_by_name():
    assert alpha_key(A.Var("arg0")) != alpha_key(A.Var("arg1"))
    a = _let("v", A.Var("arg0"), A.Var("v"))
    b = _let("v", A.Var("arg1"), A.Var("v"))
    assert alpha_key(a) != alpha_key(b)


def test_alpha_key_renamed_method_def_params_identify():
    a = A.MethodDef("m", ("x",), A.call(A.Var("x"), "title"))
    b = A.MethodDef("m", ("y",), A.call(A.Var("y"), "title"))
    assert alpha_key(a) == alpha_key(b)
    # Arity is part of the key.
    c = A.MethodDef("m", ("y", "z"), A.call(A.Var("y"), "title"))
    assert alpha_key(a) != alpha_key(c)


def test_alpha_key_shadowing_is_not_conflated():
    # ``let v = 1 in let v = v in v`` vs ``let v = 1 in let w = v in v``:
    # the second body reads the *outer* binder, the first the inner one.
    a = _let("v", A.IntLit(1), _let("v", A.Var("v"), A.Var("v")))
    b = _let("v", A.IntLit(1), _let("w", A.Var("v"), A.Var("v")))
    assert alpha_key(a) != alpha_key(b)


def test_alpha_key_respects_outer_scope_argument():
    # Under an outer binder for "x", ``x`` is bound (a distance), not free.
    assert alpha_key(A.Var("x"), ("x",)) == 0
    assert alpha_key(A.Var("x"), ()) == ("fv", "x")
    body = A.call(A.Var("x"), "+", A.Var("free"))
    assert alpha_key(body, ("x",)) != alpha_key(body, ())


def test_alpha_key_memo_is_context_keyed():
    # The same interned node queried under different outer scopes must not
    # leak one context's key into the other.
    node = A.Var("x")
    free_key = alpha_key(node, ())
    bound_key = alpha_key(node, ("x",))
    assert free_key != bound_key
    assert alpha_key(node, ()) == free_key
    assert alpha_key(node, ("y", "x")) == bound_key


def test_resolver_memos_dropped_on_pickle():
    expr = _let("v", A.Var("free"), A.call(A.Var("v"), "+", A.Var("free")))
    free_var_tuple(expr)
    alpha_key(expr)
    assert "_fv_tuple" in expr.__dict__
    assert "_alpha_memo" in expr.__dict__
    revived = pickle.loads(pickle.dumps(expr))
    assert "_fv_tuple" not in revived.__dict__
    assert "_alpha_memo" not in revived.__dict__
    # Recomputation on the far side is deterministic.
    assert free_var_tuple(revived) == free_var_tuple(expr)
    assert alpha_key(revived) == alpha_key(expr)
