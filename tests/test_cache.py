"""Tests for the synthesis performance subsystem (repro.synth.cache):
hash-consing, spec-outcome memoization, invalidation, the cache-on/off
equivalence guarantee, and regression tests for the budget- and size-bound
bugfixes in the search loop."""

from __future__ import annotations

import pytest

from repro.lang import ast as A
from repro.lang import types as T
from repro.apps.blog import build_blog_app, seed_blog
from repro.benchmarks import get_benchmark, run_benchmark
from repro.synth import SynthConfig, define, evaluate_spec, synthesize
from repro.synth.cache import MISSING, NodeInterner, SynthCache
from repro.synth.goal import (
    Budget,
    SynthesisTimeout,
    evaluate_all_specs,
    evaluate_guard,
)
from repro.synth.merge import SpecSolution
from repro.synth.search import SearchStats, _WorkList, generate_for_spec, generate_guard
from repro.synth.synthesizer import _reuse_solution


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture()
def blog_problem():
    """The find_user goal of the synth unit tests, with a seeding spec."""

    app = build_blog_app()
    User = app.models["User"]
    problem = define(
        "find_user",
        "(Str) -> User",
        consts=[True, False, User],
        class_table=app.class_table,
        reset=app.reset,
    )

    def setup(ctx):
        seed_blog(app)
        ctx.invoke("carol")

    def postcond(ctx, result):
        ctx.assert_(lambda: result.username == "carol")

    problem.add_spec("finds carol", setup, postcond)
    problem.app = app  # type: ignore[attr-defined]
    return problem


@pytest.fixture()
def mutable_seed_problem():
    """A goal whose reset re-applies *mutable* seed data.

    Changing ``seed`` changes what reset restores, which is exactly the
    situation that makes memoized outcomes stale.
    """

    app = build_blog_app()
    User = app.models["User"]
    seed = {"username": "carol"}

    def reset():
        app.reset()
        app.models["User"].create(name="Seeded", username=seed["username"])

    problem = define(
        "first_user", "() -> User", consts=[User],
        class_table=app.class_table, reset=reset,
    )

    def setup(ctx):
        ctx.invoke()

    def postcond(ctx, result):
        ctx.assert_(lambda: result.username == "carol")

    spec = problem.add_spec("first is carol", setup, postcond)
    return problem, spec, seed


FIRST_USER = A.call(A.ConstRef("User"), "first")


# ---------------------------------------------------------------------------
# Hash-consing and AST metadata memoization
# ---------------------------------------------------------------------------


def test_interner_canonicalizes_equal_nodes():
    interner = NodeInterner()
    a = A.call(A.ConstRef("User"), "first")
    b = A.call(A.ConstRef("User"), "first")
    assert a is not b and a == b
    assert interner.intern(a) is a
    assert interner.intern(b) is a  # structurally equal -> canonical instance
    assert interner.stats.intern_misses == 1
    assert interner.stats.intern_hits == 1
    assert len(interner) == 1


def test_first_hole_is_memoized_per_node():
    expr = A.Seq(A.TypedHole(T.BOOL), A.NIL)
    first = A.first_hole(expr)
    assert first is A.first_hole(expr)  # second call hits the memo
    assert first.hole == A.TypedHole(T.BOOL)
    hole_free = A.Seq(A.IntLit(1), A.IntLit(2))
    assert A.first_hole(hole_free) is None
    assert A.first_hole(hole_free) is None  # memoized None, still None


def test_worklist_interns_pushed_candidates():
    cache = SynthCache()
    worklist = _WorkList("paper", interner=cache.interner)
    a = A.Seq(A.TypedHole(T.BOOL), A.NIL)
    b = A.Seq(A.TypedHole(T.BOOL), A.NIL)
    assert worklist.push(a, 0)
    assert not worklist.push(b, 0)  # deduplicated via the interner
    _, popped = worklist.pop()
    assert popped is a


# ---------------------------------------------------------------------------
# Spec-outcome memo: hits, misses, eviction
# ---------------------------------------------------------------------------


def test_spec_memo_hit_skips_execution(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache()
    program = problem.make_program(FIRST_USER)

    first = evaluate_spec(problem, program, spec, cache=cache)
    assert first.ok
    assert (cache.stats.spec_misses, cache.stats.spec_hits) == (1, 0)

    second = evaluate_spec(problem, program, spec, cache=cache)
    assert second is first  # the memoized outcome object, no re-run
    assert (cache.stats.spec_misses, cache.stats.spec_hits) == (1, 1)


def test_disabled_cache_executes_but_counts_redundancy(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache(enabled=False)
    program = problem.make_program(FIRST_USER)

    first = evaluate_spec(problem, program, spec, cache=cache)
    second = evaluate_spec(problem, program, spec, cache=cache)
    assert first.ok and second.ok
    assert second is not first  # re-executed
    assert cache.stats.spec_hits == 0
    assert cache.stats.spec_misses == 1  # one unique key...
    assert cache.stats.spec_redundant == 1  # ...and one observed re-run
    # Total executions on the disabled path = misses + redundant.


def test_untracked_disabled_cache_is_a_noop_baseline(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache(enabled=False, track_redundancy=False)
    program = problem.make_program(FIRST_USER)
    evaluate_spec(problem, program, spec, cache=cache)
    evaluate_spec(problem, program, spec, cache=cache)
    assert len(cache) == 0  # no key bookkeeping at all
    assert cache.stats.spec_redundant == 0
    assert cache.stats.spec_misses == 2  # executions still counted


def test_synthesize_releases_its_cache(blog_problem):
    result = synthesize(blog_problem, SynthConfig(timeout_s=30))
    assert result.success
    # The per-run cache must not stay registered on a long-lived problem.
    assert blog_problem._caches == []


def test_memo_is_precision_keyed(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache()
    program = problem.make_program(FIRST_USER)
    evaluate_spec(problem, program, spec, cache=cache)

    from dataclasses import replace
    from repro.lang.effects import PRECISION_PURITY

    coarse = replace(problem, class_table=problem.class_table.coarsened(PRECISION_PURITY))
    evaluate_spec(coarse, program, spec, cache=cache)
    assert cache.stats.spec_misses == 2  # different precision, different key
    assert cache.stats.spec_hits == 0


def test_lru_eviction_is_counted(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache(max_entries=2)
    bodies = [A.IntLit(1), A.IntLit(2), A.IntLit(3)]
    for body in bodies:
        evaluate_spec(problem, problem.make_program(body), spec, cache=cache)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    # The oldest entry was evicted: looking it up again is a miss.
    evaluate_spec(problem, problem.make_program(bodies[0]), spec, cache=cache)
    assert cache.stats.spec_hits == 0
    assert cache.stats.spec_misses == 4


# ---------------------------------------------------------------------------
# Guard memo
# ---------------------------------------------------------------------------


def test_guard_memo_answers_both_polarities_from_one_run(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache()
    guard = A.TRUE
    assert evaluate_guard(problem, guard, spec, expect=True, cache=cache)
    assert not evaluate_guard(problem, guard, spec, expect=False, cache=cache)
    assert cache.stats.guard_misses == 1
    assert cache.stats.guard_hits == 1  # negated question answered from memo


def test_guard_memo_rejects_crashing_guards(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache()
    crashing = A.call(A.NIL, "name")
    assert not evaluate_guard(problem, crashing, spec, expect=True, cache=cache)
    assert not evaluate_guard(problem, crashing, spec, expect=False, cache=cache)
    assert cache.stats.guard_hits == 1
    program = problem.make_program(crashing)
    assert cache.lookup_guard(problem, program, spec) is None  # stored crash
    assert cache.lookup_guard(problem, problem.make_program(A.FALSE), spec) is MISSING


# ---------------------------------------------------------------------------
# Invalidation when reset's baseline changes
# ---------------------------------------------------------------------------


def test_invalidation_after_reset_baseline_mutates(mutable_seed_problem):
    problem, spec, seed = mutable_seed_problem
    cache = SynthCache()
    problem.register_cache(cache)
    program = problem.make_program(FIRST_USER)

    assert evaluate_spec(problem, program, spec, cache=cache).ok

    # The DB baseline that reset restores changes between specs...
    seed["username"] = "dave"
    stale = evaluate_spec(problem, program, spec, cache=cache)
    assert stale.ok  # ...so the memoized outcome is stale by construction
    assert cache.stats.spec_hits == 1

    problem.invalidate_caches()
    assert cache.stats.invalidations == 1
    fresh = evaluate_spec(problem, program, spec, cache=cache)
    assert not fresh.ok  # re-executed against the new baseline
    assert cache.stats.spec_misses == 2


def test_rebind_reset_invalidates_registered_caches(mutable_seed_problem):
    problem, spec, _ = mutable_seed_problem
    cache = SynthCache()
    problem.register_cache(cache)
    program = problem.make_program(FIRST_USER)
    assert evaluate_spec(problem, program, spec, cache=cache).ok
    assert len(cache) == 1

    app = problem.app if hasattr(problem, "app") else None  # noqa: F841
    problem.rebind_reset(lambda: None)
    assert len(cache) == 0
    assert cache.stats.invalidations == 1


# ---------------------------------------------------------------------------
# Cache on/off equivalence (end to end)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("benchmark_id", ["S4", "S5"])
def test_synthesis_results_identical_with_and_without_cache(benchmark_id):
    benchmark = get_benchmark(benchmark_id)
    off = run_benchmark(
        benchmark, SynthConfig(timeout_s=60, cache_spec_outcomes=False), runs=1
    )
    on = run_benchmark(
        benchmark, SynthConfig(timeout_s=60, cache_spec_outcomes=True), runs=1
    )
    assert off.success and on.success
    assert off.last_result.program == on.last_result.program
    assert on.cache_hits > 0  # the memo absorbed repeated executions
    assert off.cache_hits == 0  # a disabled cache never serves hits
    assert off.cache_redundant > 0  # ...but it observed the redundancy
    # The executions the enabled cache performed are exactly the unique ones.
    assert on.cache_misses == off.cache_misses


def test_synthesize_surfaces_cache_stats(blog_problem):
    result = synthesize(blog_problem, SynthConfig(timeout_s=30))
    assert result.success
    assert result.cache_stats is not None
    assert result.stats.cache_misses == result.cache_stats.misses
    assert result.stats.cache_misses > 0
    assert set(result.cache_stats.as_dict()) >= {"spec_hits", "spec_misses", "evictions"}


# ---------------------------------------------------------------------------
# Bugfix regressions: budget checks in reuse / merge validation
# ---------------------------------------------------------------------------


def test_reuse_solution_checks_budget(blog_problem):
    spec = blog_problem.specs[0]
    solutions = [SpecSolution(expr=FIRST_USER, specs=())]
    stats = SearchStats()
    with pytest.raises(SynthesisTimeout):
        _reuse_solution(
            blog_problem, spec, solutions, SynthConfig(), Budget(0.0), stats
        )
    assert stats.timed_out


def test_evaluate_all_specs_checks_budget(blog_problem):
    program = blog_problem.make_program(FIRST_USER)
    stats = SearchStats()
    with pytest.raises(SynthesisTimeout):
        evaluate_all_specs(blog_problem, program, budget=Budget(0.0), stats=stats)
    assert stats.timed_out


def test_evaluate_all_specs_without_budget_still_works(blog_problem):
    program = blog_problem.make_program(FIRST_USER)
    assert not evaluate_all_specs(blog_problem, program)  # wrong user, just False


# ---------------------------------------------------------------------------
# Bugfix regression: S-Eff wrap respects the size bound
# ---------------------------------------------------------------------------


def test_effect_wrap_is_size_bounded(blog_problem):
    # With max_size=3, `User.first` (2 nodes) fails with an effect error and
    # the S-Eff wrap would grow it past the bound; the wrapped candidate
    # must be pruned (counted in pruned_size), never pushed.
    config = SynthConfig(timeout_s=20, max_size=3)
    stats = SearchStats()
    expr = generate_for_spec(
        blog_problem, blog_problem.specs[0], config, stats=stats
    )
    assert expr is None  # no solution fits in 3 nodes
    assert stats.effect_wraps == 0  # every wrap exceeded the bound
    assert stats.pruned_size > 0


# ---------------------------------------------------------------------------
# Bugfix regression: per-candidate budget guard in generate_guard
# ---------------------------------------------------------------------------


class _FlippingBudget:
    """Reports unexpired exactly once, then expired forever after."""

    def __init__(self) -> None:
        self.calls = 0

    def expired(self) -> bool:
        self.calls += 1
        return self.calls > 1

    def elapsed(self) -> float:
        return 0.0


def test_generate_guard_checks_budget_per_candidate(blog_problem):
    spec = blog_problem.specs[0]
    stats = SearchStats()
    with pytest.raises(SynthesisTimeout):
        generate_guard(
            blog_problem,
            [spec],
            [],
            SynthConfig(),
            budget=_FlippingBudget(),
            stats=stats,
        )
    # The budget expired during the first expansion: without the
    # per-candidate guard, every hole-free candidate of that expansion
    # would have been evaluated before the next pop noticed the timeout.
    assert stats.evaluated == 0
    assert stats.timed_out
