"""Backend-parametrized tests for the persistent spec-outcome store
(repro.synth.store): the JSON document and the SQLite database must pass the
same suite -- round-trips, corruption, schema versions, invalidation,
LRU compaction -- plus the backend-specific concurrency contracts (JSON
merge-on-flush, SQLite multi-process writers) and the ``store_tool`` CLI."""

from __future__ import annotations

import json
import multiprocessing
import os
import sqlite3
import subprocess
import sys

import pytest

from repro.synth import SynthConfig, SynthesisSession
from repro.synth.store import (
    SQLITE_SUFFIXES,
    STORE_VERSION,
    JsonSpecOutcomeStore,
    SpecOutcomeStore,
    SQLiteSpecOutcomeStore,
)

BACKENDS = ["json", "sqlite"]


def _path(tmp_path, backend: str):
    return str(tmp_path / ("outcomes.json" if backend == "json" else "outcomes.sqlite"))


def _entry(truth=True):
    return {"v": STORE_VERSION, "kind": "guard", "truth": truth}


# ---------------------------------------------------------------------------
# Backend dispatch
# ---------------------------------------------------------------------------


def test_suffix_dispatch(tmp_path):
    assert isinstance(SpecOutcomeStore(str(tmp_path / "a.json")), JsonSpecOutcomeStore)
    for suffix in SQLITE_SUFFIXES:
        store = SpecOutcomeStore(str(tmp_path / f"a{suffix}"))
        assert isinstance(store, SQLiteSpecOutcomeStore)
        store.close()


def test_explicit_backend_overrides_suffix(tmp_path):
    store = SpecOutcomeStore(str(tmp_path / "odd.dat"), backend="sqlite")
    assert store.backend == "sqlite"
    store.close()
    assert SpecOutcomeStore(str(tmp_path / "odd2.dat")).backend == "json"
    with pytest.raises(ValueError):
        SpecOutcomeStore(str(tmp_path / "x.json"), backend="mystery")


def test_open_passes_through_instances_and_none(tmp_path):
    assert SpecOutcomeStore.open(None) is None
    store = SpecOutcomeStore(str(tmp_path / "a.json"))
    assert SpecOutcomeStore.open(store) is store


# ---------------------------------------------------------------------------
# The shared suite: round-trip, corruption, schema version, invalidation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_round_trip_across_sessions(tmp_path, backend):
    path = _path(tmp_path, backend)
    config = SynthConfig(timeout_s=60)
    with SynthesisSession(config, store=path) as first_session:
        first = first_session.run("S4")
    assert first.success
    assert os.path.exists(path)

    with SynthesisSession(config, store=path) as second_session:
        assert second_session.store.backend == backend
        assert second_session.store.stats.loaded > 0
        second = second_session.run("S4")
    assert second.success
    assert second.program == first.program
    assert second.stats.store_hits >= 1
    assert second.stats.reset_replays == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_corrupted_file_is_ignored(tmp_path, backend):
    path = _path(tmp_path, backend)
    with open(path, "wb") as fh:
        fh.write(b"{not json! and definitely not sqlite\xff\x00")
    store = SpecOutcomeStore(path)
    assert store.stats.corrupt_file
    assert len(store) == 0
    # The store stays usable: a run against it persists fresh outcomes.
    with SynthesisSession(SynthConfig(timeout_s=60), store=store) as session:
        result = session.run("S1")
    assert result.success
    reopened = SpecOutcomeStore(path)
    assert not reopened.stats.corrupt_file
    assert len(reopened) > 0
    reopened.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_wrong_schema_version_is_dropped_wholesale(tmp_path, backend):
    path = _path(tmp_path, backend)
    if backend == "json":
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"version": 999, "entries": {"k": _entry()}}, fh)
    else:
        store = SpecOutcomeStore(path)
        store.raw_put("k", _entry())
        store.close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE meta SET value = '999' WHERE key = 'version'")
        conn.close()
    store = SpecOutcomeStore(path)
    assert store.stats.corrupt_file
    assert len(store) == 0
    store.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_stale_entries_are_dropped_at_load(tmp_path, backend):
    path = _path(tmp_path, backend)
    store = SpecOutcomeStore(path)
    store.raw_put("good", _entry())
    store.flush()
    store.close()
    if backend == "json":
        data = json.loads(open(path, encoding="utf-8").read())
        data["entries"]["bad-version"] = {"v": 999, "kind": "spec", "ok": True}
        data["entries"]["bad-kind"] = {"v": STORE_VERSION, "kind": "mystery"}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
    else:
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "INSERT INTO entries (key, kind, v, payload, last_hit)"
                " VALUES ('bad-version', 'spec', 999, '{}', 99)"
            )
            conn.execute(
                "INSERT INTO entries (key, kind, v, payload, last_hit)"
                " VALUES ('bad-kind', 'mystery', ?, '{}', 99)",
                (STORE_VERSION,),
            )
        conn.close()
    store = SpecOutcomeStore(path)
    assert store.stats.loaded == 1
    assert store.stats.stale_dropped == 2
    assert dict(store.raw_entries()) == {"good": _entry()}
    store.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_invalidate_caches_wipes_attached_store(tmp_path, backend):
    path = _path(tmp_path, backend)
    with SynthesisSession(SynthConfig(timeout_s=60), store=path) as session:
        session.run("S1")
        assert len(session.store) > 0
        session.problem_for("S1").invalidate_caches()
        assert len(session.store) == 0
    reopened = SpecOutcomeStore(path)
    assert len(reopened) == 0
    reopened.close()


# ---------------------------------------------------------------------------
# Compaction (LRU on last-hit order) and migration
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_compact_keeps_most_recently_hit(tmp_path, backend):
    path = _path(tmp_path, backend)
    store = SpecOutcomeStore(path)
    for i in range(5):
        store.raw_put(f"k{i}", _entry(i % 2 == 0))
    # Touch k0: it becomes the most recently hit entry.
    assert store._raw_get("k0") is not None
    pruned = store.compact(2)
    assert pruned == 3
    assert store.stats.compacted == 3
    kept = {key for key, _ in store.raw_entries()}
    assert kept == {"k4", "k0"}
    store.flush()
    store.close()
    reopened = SpecOutcomeStore(path)
    assert {key for key, _ in reopened.raw_entries()} == {"k4", "k0"}
    reopened.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_compact_noop_below_bound(tmp_path, backend):
    store = SpecOutcomeStore(_path(tmp_path, backend))
    store.raw_put("k", _entry())
    assert store.compact(10) == 0
    assert len(store) == 1
    store.close()


@pytest.mark.parametrize("direction", ["json->sqlite", "sqlite->json"])
def test_store_tool_migrate_round_trip(tmp_path, direction):
    src_backend, dst_backend = direction.split("->")
    src_path = _path(tmp_path, src_backend)
    dst_path = _path(tmp_path, dst_backend)
    with SynthesisSession(SynthConfig(timeout_s=60), store=src_path) as session:
        first = session.run("S1")

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ, PYTHONPATH=os.path.join(root, "src"))
    proc = subprocess.run(
        [sys.executable, os.path.join(root, "scripts", "store_tool.py"),
         "migrate", src_path, dst_path],
        env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["copied"] == len(SpecOutcomeStore(src_path))
    assert report["dst"]["backend"] == dst_backend

    # The migrated store answers a fresh session without re-execution.
    with SynthesisSession(SynthConfig(timeout_s=60), store=dst_path) as session:
        second = session.run("S1")
    assert second.program == first.program
    assert second.stats.store_hits >= 1
    assert second.stats.reset_replays == 0


def test_store_tool_info_and_compact(tmp_path):
    path = _path(tmp_path, "json")
    store = SpecOutcomeStore(path)
    for i in range(4):
        store.raw_put(f"k{i}", _entry())
    store.flush()
    store.close()
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ, PYTHONPATH=os.path.join(root, "src"))
    tool = os.path.join(root, "scripts", "store_tool.py")
    info = json.loads(
        subprocess.run(
            [sys.executable, tool, "info", path],
            env=env, capture_output=True, text=True,
        ).stdout
    )
    assert info["entries"] == 4 and info["backend"] == "json"
    compacted = json.loads(
        subprocess.run(
            [sys.executable, tool, "compact", path, "--max-entries", "1"],
            env=env, capture_output=True, text=True,
        ).stdout
    )
    assert compacted["pruned"] == 3 and compacted["entries_after"] == 1


# ---------------------------------------------------------------------------
# Concurrency contracts
# ---------------------------------------------------------------------------


def test_json_concurrent_flush_merges_instead_of_losing(tmp_path):
    """The last-flush-wins data loss: two writers' flushes must both survive."""

    path = str(tmp_path / "shared.json")
    first = SpecOutcomeStore(path)
    second = SpecOutcomeStore(path)  # loaded before first writes anything
    first.raw_put("from-first", _entry(True))
    first.flush()
    second.raw_put("from-second", _entry(False))
    second.flush()  # pre-fix this overwrote the document, dropping from-first
    assert second.stats.merged_in == 1
    merged = dict(SpecOutcomeStore(path).raw_entries())
    assert set(merged) == {"from-first", "from-second"}


def test_json_invalidate_still_wipes_disk_despite_merge(tmp_path):
    path = str(tmp_path / "shared.json")
    store = SpecOutcomeStore(path)
    store.raw_put("k", _entry())
    store.flush()
    store.invalidate()
    store.flush()
    assert json.loads(open(path, encoding="utf-8").read())["entries"] == {}


def _sqlite_writer(path: str, prefix: str, count: int) -> None:
    store = SpecOutcomeStore(path)
    for i in range(count):
        store.raw_put(f"{prefix}-{i}", {"v": STORE_VERSION, "kind": "guard", "truth": True})
        if i % 3 == 0:
            store.flush()
    store.close()


def test_sqlite_two_processes_lose_no_outcomes(tmp_path):
    """Two worker processes writing the same SQLite store interleave per key."""

    path = str(tmp_path / "shared.sqlite")
    SpecOutcomeStore(path).close()  # create the schema up front
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )
    writers = [
        context.Process(target=_sqlite_writer, args=(path, prefix, 25))
        for prefix in ("alpha", "beta")
    ]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(timeout=60)
        assert writer.exitcode == 0
    store = SpecOutcomeStore(path)
    keys = {key for key, _ in store.raw_entries()}
    assert keys == {f"alpha-{i}" for i in range(25)} | {f"beta-{i}" for i in range(25)}
    store.close()
