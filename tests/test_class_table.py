"""Tests for the class table, method signatures and resolution."""

from __future__ import annotations

import pytest

from repro.lang import types as T
from repro.lang.effects import Effect, EffectPair
from repro.typesys.class_table import ClassTable, MethodSig


def _table():
    ct = ClassTable()
    ct.add_class("ActiveRecord::Base")
    ct.add_class("Post", "ActiveRecord::Base")
    ct.add_method(
        MethodSig(
            owner="Post",
            name="title",
            arg_types=(),
            ret_type=T.STRING,
            effects=EffectPair.of(read="self.title"),
            impl=lambda interp, recv: "t",
        )
    )
    ct.add_method(
        MethodSig(
            owner="ActiveRecord::Base",
            name="reload",
            arg_types=(),
            ret_type=T.OBJECT,
            effects=EffectPair.of(read="self"),
            impl=lambda interp, recv: recv,
        )
    )
    ct.add_method(
        MethodSig(
            owner="Post",
            name="exists?",
            arg_types=(T.HASH,),
            ret_type=T.BOOL,
            effects=EffectPair.of(read="self"),
            singleton=True,
            impl=lambda interp, recv, h: True,
        )
    )
    return ct


def test_builtin_classes_present():
    ct = ClassTable()
    for name in ("Object", "NilClass", "String", "Integer", "Boolean", "Hash"):
        assert ct.has_class(name)


def test_add_class_requires_known_superclass():
    ct = ClassTable()
    with pytest.raises(KeyError):
        ct.add_class("Orphan", "Missing")


def test_class_info_and_pyclass():
    ct = ClassTable()
    sentinel = object()
    ct.add_class("Widget", pyclass=sentinel)
    assert ct.class_info("Widget").superclass == "Object"
    assert ct.pyclass("Widget") is sentinel
    assert ct.pyclass("Nope") is None
    with pytest.raises(KeyError):
        ct.class_info("Nope")


def test_superclass_chain_and_subclassing():
    ct = _table()
    assert ct.superclass_chain("Post") == ["Post", "ActiveRecord::Base", "Object"]
    assert ct.is_subclass("Post", "ActiveRecord::Base")
    assert ct.is_subclass("Post", "Object")
    assert not ct.is_subclass("ActiveRecord::Base", "Post")
    assert "Post" in ct.subclasses("ActiveRecord::Base")


def test_add_method_requires_known_owner():
    ct = ClassTable()
    with pytest.raises(KeyError):
        ct.add_method(MethodSig("Ghost", "m", (), T.NIL))


def test_lookup_walks_superclass_chain():
    ct = _table()
    assert ct.lookup("Post", "title").name == "title"
    # reload is inherited from ActiveRecord::Base
    assert ct.lookup("Post", "reload").owner == "ActiveRecord::Base"
    assert ct.lookup("Post", "missing") is None


def test_lookup_distinguishes_singleton_methods():
    ct = _table()
    assert ct.lookup("Post", "exists?", singleton=True) is not None
    assert ct.lookup("Post", "exists?", singleton=False) is None


def test_methods_of_and_synthesis_methods():
    ct = _table()
    assert {sig.name for sig in ct.methods_of("Post")} == {"title", "exists?"}
    assert len(ct.synthesis_methods()) == 3
    assert len(ct) == 3


def test_remove_method():
    ct = _table()
    ct.remove_method("Post", "title")
    assert ct.lookup("Post", "title") is None


def test_qualified_name_and_receiver_type():
    ct = _table()
    title = ct.lookup("Post", "title")
    exists = ct.lookup("Post", "exists?", singleton=True)
    assert title.qualified_name == "Post#title"
    assert exists.qualified_name == "Post.exists?"
    assert title.receiver_type == T.ClassType("Post")
    assert exists.receiver_type == T.SingletonClassType("Post")


def test_resolve_self_effect_on_inherited_method():
    ct = _table()
    reload = ct.lookup("Post", "reload")
    resolved = ct.resolve(reload, T.ClassType("Post"))
    assert resolved.effects.read == Effect.of("Post")


def test_resolve_applies_precision():
    ct = _table().coarsened("purity")
    title = ct.lookup("Post", "title")
    resolved = ct.resolve(title)
    assert resolved.effects.read.is_star


def test_resolve_is_cached():
    ct = _table()
    title = ct.lookup("Post", "title")
    first = ct.resolve(title)
    assert ct.resolve(title) is first


def test_resolved_synthesis_methods_cached_and_invalidated():
    ct = _table()
    resolved = ct.resolved_synthesis_methods()
    assert ct.resolved_synthesis_methods() is resolved
    ct.add_class("User", "ActiveRecord::Base")
    assert ct.resolved_synthesis_methods() is not resolved


def test_effects_of_call():
    ct = _table()
    pair = ct.effects_of_call("Post", "title")
    assert pair.read == Effect.of("Post.title")
    assert ct.effects_of_call("Post", "missing").is_pure
    singleton = ct.effects_of_call("Post", "exists?", singleton=True)
    assert singleton.read == Effect.of("Post")


def test_coarsened_is_a_view_with_new_precision():
    ct = _table()
    coarse = ct.coarsened("class")
    assert coarse.effect_precision == "class"
    assert len(coarse) == len(ct)
    assert ct.effect_precision == "precise"


def test_without_methods():
    ct = _table()
    trimmed = ct.without_methods(["Post#title"])
    assert trimmed.lookup("Post", "title") is None
    assert ct.lookup("Post", "title") is not None


def test_is_subtype_memoized_consistent():
    ct = _table()
    assert ct.is_subtype(T.ClassType("Post"), T.ClassType("ActiveRecord::Base"))
    assert ct.is_subtype(T.ClassType("Post"), T.ClassType("ActiveRecord::Base"))
    assert not ct.is_subtype(T.ClassType("ActiveRecord::Base"), T.ClassType("Post"))


def test_comp_type_is_applied_on_resolve():
    ct = _table()

    def comp(sig, receiver_type, table):
        return (T.INT,), T.INT

    ct.add_method(
        MethodSig(
            owner="Post",
            name="compy",
            arg_types=(T.STRING,),
            ret_type=T.STRING,
            comp_type=comp,
            impl=lambda interp, recv, x: x,
        )
    )
    resolved = ct.resolve(ct.lookup("Post", "compy"))
    assert resolved.arg_types == (T.INT,)
    assert resolved.ret_type == T.INT
