"""Differential tests: the tree and compiled backends are observably identical.

Every check runs the same expression (or the same spec evaluation) through
``backend="tree"`` and ``backend="compiled"`` and compares the full
observable outcome: returned values, captured effect logs, call counters and
raised error types/messages -- including hole rejection and call-budget
exhaustion.  The inputs are the 19 registry benchmarks plus a seeded stream
of generated expressions, so the two backends are diffed over both the real
substrate libraries and adversarial expression shapes (unbound variables,
unknown methods, holes in taken and untaken branches, ...).
"""

from __future__ import annotations

import random

import pytest

from repro.benchmarks import all_benchmarks
from repro.interp import Interpreter, effect_capture
from repro.interp.errors import CallBudgetExceeded
from repro.lang import ast as A
from repro.lang import types as T
from repro.lang.effects import Effect
from repro.lang import values as V
from repro.lang.pretty import pretty
from repro.synth.goal import evaluate_spec
from repro.typesys.class_table import MethodSig

BACKENDS = ("tree", "compiled")


# ---------------------------------------------------------------------------
# Outcome fingerprinting
# ---------------------------------------------------------------------------


def _canon(value):
    """A deterministic, address-free fingerprint of a runtime value."""

    if value is None or isinstance(value, (bool, int, str, V.Symbol)):
        return repr(value)
    if isinstance(value, V.HashValue):
        return ("hash", tuple(sorted((repr(k), _canon(v)) for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canon(item) for item in value))
    # Model records / class values: class name is stable, object repr is not.
    return ("obj", V.class_name_of_value(value))


def _observe(backend, class_table, expr, env, max_calls=100_000):
    """Evaluate once and fingerprint everything observable about the run."""

    interp = Interpreter(class_table, max_calls=max_calls, backend=backend)
    with effect_capture() as log:
        try:
            result = ("value", _canon(interp.eval(expr, dict(env))))
        except Exception as exc:  # noqa: BLE001 - error identity is the point
            result = ("error", type(exc).__name__, str(exc))
    return (
        result,
        str(log.read),
        str(log.write),
        log.calls,
        interp.calls_charged,
    )


def _assert_backends_agree(class_table, expr, env, max_calls=100_000):
    tree = _observe("tree", class_table, expr, env, max_calls)
    compiled = _observe("compiled", class_table, expr, env, max_calls)
    assert tree == compiled, f"backends diverge on {expr!r}:\n{tree}\n{compiled}"
    return tree


# ---------------------------------------------------------------------------
# Seeded generated expressions
# ---------------------------------------------------------------------------


_METHOD_NAMES = ("first", "title", "where", "count", "+", "-", "[]", "frobnicate")


def _gen_expr(rng: random.Random, depth: int) -> A.Node:
    """A random expression over the ORM fixture's vocabulary.

    Intentionally includes ill-formed choices (unbound variables, unknown
    constants/methods, holes) so error behavior is diffed too.  Only
    read-only methods are drawn, keeping the shared database identical
    across the two backend runs.
    """

    leaves = [
        lambda: A.NIL,
        lambda: A.TRUE,
        lambda: A.FALSE,
        lambda: A.IntLit(rng.randrange(-3, 7)),
        lambda: A.StrLit(rng.choice(["hw", "Hello", ""])),
        lambda: A.SymLit(rng.choice(["title", "slug", "missing"])),
        lambda: A.Var(rng.choice(["p", "n", "s", "h", "v", "zz"])),
        lambda: A.ConstRef(rng.choice(["Post", "Ghost"])),
        lambda: A.TypedHole(T.STRING),
    ]
    if depth <= 0:
        return rng.choice(leaves[:-1])()  # holes only via the weighted pick
    roll = rng.random()
    sub = lambda: _gen_expr(rng, depth - 1)  # noqa: E731
    if roll < 0.30:
        return rng.choice(leaves)()
    if roll < 0.40:
        return A.Seq(sub(), sub())
    if roll < 0.50:
        return A.Let("v", sub(), sub())
    if roll < 0.60:
        return A.If(sub(), sub(), sub())
    if roll < 0.66:
        return A.Not(sub())
    if roll < 0.72:
        return A.Or(sub(), sub())
    if roll < 0.78:
        return A.hash_lit(title=sub())
    name = rng.choice(_METHOD_NAMES)
    args = tuple(sub() for _ in range(rng.randrange(0, 2)))
    return A.call(sub(), name, *args)


def test_seeded_generated_expressions_identical(orm_class_table, post_model):
    post_model.create(author="a", title="Hello", slug="hw")
    env = {
        "p": post_model.first(),
        "n": 5,
        "s": "hw",
        "h": V.HashValue.of(title="Hello"),
    }
    rng = random.Random(0x5EED)
    outcomes = set()
    for _ in range(200):
        expr = _gen_expr(rng, depth=3)
        outcomes.add(_assert_backends_agree(orm_class_table, expr, env)[0][0])
    # The stream must actually exercise both success and failure paths.
    assert outcomes == {"value", "error"}


def test_generated_expressions_identical_under_tight_budget(
    orm_class_table, post_model
):
    post_model.create(author="a", title="Hello", slug="hw")
    env = {"p": post_model.first(), "n": 5, "s": "hw", "h": V.HashValue.of()}
    rng = random.Random(0xB06E7)
    saw_budget_error = False
    for _ in range(150):
        expr = _gen_expr(rng, depth=4)
        outcome = _assert_backends_agree(orm_class_table, expr, env, max_calls=2)
        if outcome[0][:2] == ("error", "CallBudgetExceeded"):
            saw_budget_error = True
    assert saw_budget_error


# ---------------------------------------------------------------------------
# Holes and budgets (the explicitly required error classes)
# ---------------------------------------------------------------------------


def test_hole_evaluation_raises_identically(orm_class_table):
    _assert_backends_agree(orm_class_table, A.TypedHole(T.STRING), {})
    _assert_backends_agree(orm_class_table, A.EffectHole(Effect.of("Post")), {})
    # A hole inside a compound expression fails from both backends too.
    expr = A.Seq(A.IntLit(1), A.TypedHole(T.INT))
    outcome = _assert_backends_agree(orm_class_table, expr, {})
    assert outcome[0][:2] == ("error", "SynRuntimeError")


def test_hole_in_untaken_branch_is_not_evaluated(orm_class_table):
    expr = A.If(A.TRUE, A.IntLit(7), A.TypedHole(T.INT))
    outcome = _assert_backends_agree(orm_class_table, expr, {})
    assert outcome[0] == ("value", "7")


def test_budget_exhaustion_identical(orm_class_table):
    expr = A.IntLit(0)
    for _ in range(4):
        expr = A.call(expr, "+", A.IntLit(1))
    outcome = _assert_backends_agree(orm_class_table, expr, {}, max_calls=2)
    assert outcome[0][:2] == ("error", "CallBudgetExceeded")


@pytest.mark.parametrize("backend", BACKENDS)
def test_nested_eval_shares_one_call_budget(orm_class_table, backend):
    """Regression: re-entrant ``eval`` must not reset the outer call budget.

    ``reenter``'s implementation re-enters the interpreter; historically each
    ``eval`` entry wiped ``_calls``, so the outer chain never exhausted its
    budget no matter how long it ran.
    """

    reenter_body = A.call(A.IntLit(1), "+", A.IntLit(1))
    orm_class_table.add_method(
        MethodSig(
            owner="Integer",
            name="reenter",
            arg_types=(),
            ret_type=T.INT,
            impl=lambda interp, recv: interp.eval(reenter_body),
        )
    )
    interp = Interpreter(orm_class_table, max_calls=3, backend=backend)
    # Each reenter call charges itself plus one nested "+": 3 chained calls
    # charge 6 > 3, which the pre-fix accounting never noticed.
    expr = A.IntLit(1)
    for _ in range(3):
        expr = A.call(expr, "reenter")
    with pytest.raises(CallBudgetExceeded):
        interp.eval(expr)

    # Within budget the charges still accumulate across nesting levels.
    roomy = Interpreter(orm_class_table, max_calls=100, backend=backend)
    assert roomy.eval(A.call(A.IntLit(1), "reenter")) == 2
    assert roomy.calls_charged == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_budget_resets_between_outermost_evals(orm_class_table, backend):
    interp = Interpreter(orm_class_table, max_calls=2, backend=backend)
    expr = A.call(A.call(A.IntLit(1), "+", A.IntLit(1)), "+", A.IntLit(1))
    assert interp.eval(expr) == 3
    assert interp.calls_charged == 2
    assert interp.eval(expr) == 3  # fresh outermost entry, fresh budget


# ---------------------------------------------------------------------------
# All 19 registry benchmarks
# ---------------------------------------------------------------------------


def _spec_candidates(problem):
    """Deterministic candidate programs over the benchmark's own vocabulary."""

    bodies = [A.NIL, A.IntLit(1)]
    bodies.extend(A.Var(param) for param in problem.params)
    calls = 0
    for resolved in problem.class_table.resolved_synthesis_methods():
        if resolved.arg_types or calls >= 4:
            continue
        sig = resolved.sig
        if sig.singleton:
            receiver = A.ConstRef(sig.owner)
        else:
            match = next(
                (
                    param
                    for param, ptype in zip(problem.params, problem.arg_types)
                    if isinstance(ptype, T.ClassType) and ptype.name == sig.owner
                ),
                None,
            )
            if match is None:
                continue
            receiver = A.Var(match)
        bodies.append(A.call(receiver, sig.name))
        calls += 1
    return [problem.make_program(body) for body in bodies]


def _outcome_fingerprint(outcome):
    failure = outcome.failure
    return (
        outcome.ok,
        outcome.passed_asserts,
        type(outcome.error).__name__ if outcome.error is not None else None,
        str(outcome.error) if outcome.error is not None else None,
        (str(failure.read_effect), str(failure.write_effect))
        if failure is not None
        else None,
        _canon(outcome.value),
    )


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.id)
def test_registry_benchmark_evaluations_identical(bench):
    problem = bench.build()
    for program in _spec_candidates(problem):
        for spec in problem.specs:
            per_backend = {
                backend: _outcome_fingerprint(
                    evaluate_spec(problem, program, spec, backend=backend)
                )
                for backend in BACKENDS
            }
            assert per_backend["tree"] == per_backend["compiled"], (
                f"{bench.id}/{spec.name}: backends diverge on "
                f"{pretty(program.body)}:\n{per_backend}"
            )


# ---------------------------------------------------------------------------
# Shadowing and capture (the slot-assignment battery)
# ---------------------------------------------------------------------------
#
# Every case here is a binding-structure trap for a compile-time slot
# assigner: shadowed parameters, rebinding in nested lets, sibling lets that
# reuse a name at the same depth, a let value referencing the name it is
# about to shadow, and shadowing confined to one branch of an If.  A wrong
# baked frame index resolves to the wrong binding; the dynamic innermost-
# first scan of the tree walker is the ground truth the compiled backend
# must match value-for-value.


def _let(name, value, body):
    return A.Let(name, value, body)


_SHADOWING_CASES = [
    # Parameter shadowed by a let: the body must see the inner binding.
    _let("p", A.IntLit(1), A.Var("p")),
    # ... and the let *value* must still see the outer one.
    _let("p", A.call(A.Var("n"), "+", A.IntLit(1)), A.Var("p")),
    # Rebinding chain: each let shadows the previous same-named binder.
    _let("v", A.IntLit(1), _let("v", A.call(A.Var("v"), "+", A.IntLit(10)), A.Var("v"))),
    # Triple rebinding, innermost wins.
    _let(
        "v",
        A.IntLit(1),
        _let("v", A.IntLit(2), _let("v", A.IntLit(3), A.Var("v"))),
    ),
    # Sibling lets at the same depth: the second must not see the first's
    # frame slot as stale state (frames pop between siblings).
    A.Seq(
        _let("v", A.IntLit(7), A.Var("v")),
        _let("v", A.StrLit("x"), A.Var("v")),
    ),
    # A shadowing let confined to the then-branch; the else-branch still
    # resolves the parameter.
    A.If(
        A.Var("flag"),
        _let("n", A.IntLit(100), A.Var("n")),
        A.Var("n"),
    ),
    # The let value reads the binder it is about to shadow (no self-capture).
    _let("n", A.call(A.Var("n"), "+", A.Var("n")), A.Var("n")),
    # Shadowing inside a hash literal entry.
    _let("n", A.IntLit(5), A.hash_lit(title=A.Var("n"), slug=A.Var("s"))),
    # Escape after pop: the inner let's frame slot must not leak into the
    # outer expression once its body ends.
    A.Seq(_let("zz", A.IntLit(9), A.Var("zz")), A.Var("n")),
    # An unbound name at a slot position that *was* bound in a sibling.
    A.Seq(_let("w", A.IntLit(1), A.Var("w")), A.Var("w")),
    # Method-call receiver and args each under their own shadow.
    _let(
        "n",
        A.IntLit(2),
        A.call(A.Var("n"), "+", _let("n", A.IntLit(40), A.Var("n"))),
    ),
    # Or short-circuit with a shadowed binder in the untaken right side.
    _let("v", A.TRUE, A.Or(A.Var("v"), _let("v", A.NIL, A.Var("v")))),
]


@pytest.mark.parametrize("expr", _SHADOWING_CASES, ids=lambda e: pretty(e)[:60])
def test_shadowing_battery_backends_identical(orm_class_table, post_model, expr):
    post_model.create(author="a", title="Hello", slug="hw")
    env = {"p": post_model.first(), "n": 5, "s": "hw", "flag": True}
    _assert_backends_agree(orm_class_table, expr, env)


def test_shadowing_battery_values(orm_class_table):
    """Spot-check the actual values, not just tree/compiled agreement."""

    env = {"n": 5, "flag": False}
    interp = Interpreter(orm_class_table, backend="compiled")
    assert interp.eval(_SHADOWING_CASES[1], dict(env)) == 6
    assert interp.eval(_SHADOWING_CASES[2], {"n": 0}) == 11
    assert interp.eval(_SHADOWING_CASES[3], {}) == 3
    assert interp.eval(_SHADOWING_CASES[5], dict(env)) == 5
    assert interp.eval(_SHADOWING_CASES[6], dict(env)) == 10


@pytest.mark.parametrize("backend", BACKENDS)
def test_deep_shadowing_tower_resolves_innermost(orm_class_table, backend):
    """A 30-deep rebinding tower: every level shadows the same name."""

    expr = A.Var("v")
    for depth in range(30, 0, -1):
        expr = A.Let("v", A.IntLit(depth), expr)
    interp = Interpreter(orm_class_table, backend=backend)
    assert interp.eval(expr, {"v": -1}) == 30


def test_resolver_identity_mode_matches_slot_mode(orm_class_table, post_model):
    """REPRO_SLOT_FRAMES=0 (dynamic scan) agrees with baked slots."""

    from repro.lang.resolve import set_slot_frames, slot_frames_enabled

    ambient_slots = slot_frames_enabled()
    post_model.create(author="a", title="Hello", slug="hw")
    env = {"p": post_model.first(), "n": 5, "s": "hw", "flag": True}
    scope = tuple(env)
    for expr in _SHADOWING_CASES:
        baked = _observe("compiled", orm_class_table, expr, env)
        previous = set_slot_frames(False)
        try:
            dynamic = _observe("compiled", orm_class_table, expr, env)
        finally:
            set_slot_frames(previous)
        assert baked == dynamic, f"slot modes diverge on {pretty(expr)}"
        # The dynamic run compiled its own mode-tagged closure rather than
        # being served the slot-baked one (when the suite itself runs under
        # REPRO_SLOT_FRAMES=0 both runs are dynamic, so only #dyn exists).
        memo = expr.__dict__.get("_compiled")
        assert memo is not None and ("#dyn", scope) in memo
        if ambient_slots:
            assert scope in memo
