"""Tests for the SynthesisSession engine API and the persistent spec-outcome
store (repro.synth.session / repro.synth.store): shared-vs-cold run
equivalence, warm precision sweeps, sweep normalization, store round-trips
across simulated process boundaries, corrupted/stale store handling, and
parity of the deprecated ``synthesize`` shim."""

from __future__ import annotations

import json

import pytest

from repro.benchmarks import get_benchmark, run_benchmark
from repro.lang.effects import PRECISIONS
from repro.synth import (
    SpecOutcomeStore,
    SynthConfig,
    SynthesisSession,
    synthesize,
)
from repro.synth.store import (
    STORE_VERSION,
    outcome_from_json,
    outcome_to_json,
    program_hash,
    problem_fingerprint,
)

FAST = ["S1", "S4", "S5"]


# ---------------------------------------------------------------------------
# run(): warm resources, equivalence with cold runs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("benchmark_id", FAST)
def test_shared_vs_cold_run_equivalence(benchmark_id):
    """A warm session must synthesize exactly what isolated cold runs do."""

    cold = run_benchmark(
        get_benchmark(benchmark_id), SynthConfig(timeout_s=60), warm_state=False
    )
    with SynthesisSession(SynthConfig(timeout_s=60)) as session:
        first = session.run(benchmark_id)
        second = session.run(benchmark_id)
    assert cold.success and first.success and second.success
    assert first.program == second.program
    assert first.pretty() == cold.program_text
    # The second warm run answers everything from the shared memo and
    # snapshot baseline: no reset-closure replays at all.
    assert second.stats.reset_replays == 0


def test_run_accepts_problem_spec_and_id():
    benchmark = get_benchmark("S1")
    with SynthesisSession(SynthConfig(timeout_s=60)) as session:
        by_id = session.run("S1")
        by_spec = session.run(benchmark)
        by_problem = session.run(session.problem_for("S1"))
    assert by_id.program == by_spec.program == by_problem.program


def test_run_applies_benchmark_config_overrides():
    # S6 carries a max_size override; running it by id must apply it.
    with SynthesisSession(SynthConfig(timeout_s=60)) as session:
        problem = session.problem_for("S6")
        assert problem is session.problem_for("S6")  # built once


def test_precision_override_stays_warm():
    """The satellite fix: precision sweeps reuse recordings, not rebuilds."""

    with SynthesisSession(SynthConfig(timeout_s=60)) as session:
        precise = session.run("S1")
        coarse = session.run("S1", effect_precision="class")
    assert precise.success and coarse.success
    # The coarse run replayed the precise run's recordings: zero resets.
    assert coarse.stats.reset_replays == 0
    assert coarse.stats.state_restores > 0


def test_session_close_unregisters_cache_and_rejects_runs():
    session = SynthesisSession(SynthConfig(timeout_s=60))
    result = session.run("S1")
    assert result.success
    problem = session.problem_for("S1")
    assert session.cache in problem._caches
    session.close()
    assert session.cache not in problem._caches
    with pytest.raises(RuntimeError):
        session.run("S1")


def test_deprecated_synthesize_shim_parity():
    benchmark = get_benchmark("S1")
    config = SynthConfig(timeout_s=60)
    with pytest.warns(DeprecationWarning, match="SynthesisSession"):
        legacy = synthesize(benchmark.build(), config)
    with SynthesisSession(config) as session:
        modern = session.run(benchmark.build())
    assert legacy.success and modern.success
    assert legacy.program == modern.program
    assert legacy.pretty() == modern.pretty()


# ---------------------------------------------------------------------------
# sweep(): variants, warm vs cold isolation
# ---------------------------------------------------------------------------


def test_sweep_warm_shares_state_across_variants():
    with SynthesisSession(SynthConfig(timeout_s=60)) as session:
        entries = session.sweep(["S1"], [("a", {}), ("b", {})])
    assert [e.variant for e in entries] == ["a", "b"]
    assert all(e.success for e in entries)
    assert entries[0].result.program == entries[1].result.program
    # Variant b ran entirely from variant a's warm state.
    assert entries[1].result.stats.reset_replays == 0


def test_sweep_cold_isolates_every_cell():
    with SynthesisSession(SynthConfig(timeout_s=60)) as session:
        entries = session.sweep(["S1"], [("a", {}), ("b", {})], warm=False)
    assert all(e.success for e in entries)
    assert entries[0].result.program == entries[1].result.program
    # Each cell rebuilt its own baseline (one reset-closure replay each).
    assert [e.result.stats.reset_replays for e in entries] == [1, 1]


def test_sweep_variant_normalization():
    session = SynthesisSession(SynthConfig(timeout_s=60))
    try:
        named = session._normalize_variants(
            [("explicit", {}), {"effect_precision": "class"}, SynthConfig()]
        )
        assert [name for name, _ in named] == [
            "explicit",
            "effect_precision=class",
            "variant2",
        ]
        assert session._normalize_variants(None) == [("base", {})]
        with pytest.raises(TypeError):
            session._normalize_variants([42])
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Persistent store: round-trips, corruption, staleness
# ---------------------------------------------------------------------------


# A7 is an app-backed benchmark whose failing asserts mix class-level and
# column effects (the None-region serialization regression); S1 is synthetic.
@pytest.mark.parametrize("benchmark_id", ["S1", "A7"])
def test_store_round_trip_across_sessions(tmp_path, benchmark_id):
    """Write in one session, reopen in another process-simulated session."""

    path = tmp_path / "outcomes.json"
    config = SynthConfig(timeout_s=60)
    with SynthesisSession(config, store=str(path)) as first_session:
        first = first_session.run(benchmark_id)
    assert first.success
    assert path.exists()

    with SynthesisSession(config, store=str(path)) as second_session:
        assert second_session.store.stats.loaded > 0
        second = second_session.run(benchmark_id)
    assert second.success
    assert second.program == first.program
    assert second.stats.store_hits >= 1
    # Everything executed in session one came back from disk: no resets.
    assert second.stats.reset_replays == 0


def test_clear_memory_caches_falls_back_to_store(tmp_path):
    path = tmp_path / "outcomes.json"
    with SynthesisSession(SynthConfig(timeout_s=60), store=str(path)) as session:
        first = session.run("S1")
        assert first.stats.store_hits == 0
        session.clear_memory_caches()
        second = session.run("S1")
    assert second.program == first.program
    assert second.stats.store_hits >= 1


def test_store_corrupted_file_is_ignored(tmp_path):
    path = tmp_path / "outcomes.json"
    path.write_text("{not json!", encoding="utf-8")
    store = SpecOutcomeStore(str(path))
    assert store.stats.corrupt_file
    assert len(store) == 0
    with SynthesisSession(SynthConfig(timeout_s=60), store=store) as session:
        result = session.run("S1")
    assert result.success
    # The corrupt file was overwritten with a valid store on flush.
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["version"] == STORE_VERSION and data["entries"]


def test_store_wrong_schema_version_is_ignored(tmp_path):
    path = tmp_path / "outcomes.json"
    path.write_text(
        json.dumps({"version": 999, "entries": {"k": {"v": 999, "kind": "spec"}}}),
        encoding="utf-8",
    )
    store = SpecOutcomeStore(str(path))
    assert store.stats.corrupt_file
    assert len(store) == 0


def test_store_stale_entries_are_dropped(tmp_path):
    path = tmp_path / "outcomes.json"
    path.write_text(
        json.dumps(
            {
                "version": STORE_VERSION,
                "entries": {
                    "bad-version": {"v": 999, "kind": "spec", "ok": True},
                    "bad-kind": {"v": STORE_VERSION, "kind": "mystery"},
                    "not-a-dict": 5,
                    "good": {
                        "v": STORE_VERSION,
                        "kind": "guard",
                        "truth": True,
                    },
                },
            }
        ),
        encoding="utf-8",
    )
    store = SpecOutcomeStore(str(path))
    assert store.stats.loaded == 1
    assert store.stats.stale_dropped == 3


def test_store_malformed_entry_payload_is_a_miss(tmp_path):
    """An entry that loads but cannot be decoded is treated as stale."""

    path = tmp_path / "outcomes.json"
    with SynthesisSession(SynthConfig(timeout_s=60), store=str(path)) as session:
        session.run("S1")
    data = json.loads(path.read_text(encoding="utf-8"))
    # Corrupt every spec payload in place (keep the entry shape valid).
    for entry in data["entries"].values():
        if entry["kind"] == "spec":
            entry["ok"] = "definitely-not-a-bool"
    path.write_text(json.dumps(data), encoding="utf-8")

    with SynthesisSession(SynthConfig(timeout_s=60), store=str(path)) as session:
        result = session.run("S1")
    assert result.success
    assert result.stats.reset_replays >= 1  # it really re-executed


def test_store_disabled_cache_never_consults_store(tmp_path):
    path = tmp_path / "outcomes.json"
    config = SynthConfig(timeout_s=60)
    with SynthesisSession(config, store=str(path)) as session:
        session.run("S1")
    off = SynthConfig(timeout_s=60, cache_spec_outcomes=False)
    with SynthesisSession(off, store=str(path)) as session:
        result = session.run("S1")
    assert result.success
    assert result.stats.store_hits == 0


def test_invalidate_caches_wipes_attached_store(tmp_path):
    path = tmp_path / "outcomes.json"
    with SynthesisSession(SynthConfig(timeout_s=60), store=str(path)) as session:
        session.run("S1")
        assert len(session.store) > 0
        session.problem_for("S1").invalidate_caches()
        assert len(session.store) == 0
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["entries"] == {}


# ---------------------------------------------------------------------------
# Store payloads and content hashes (unit level)
# ---------------------------------------------------------------------------


def test_outcome_payload_round_trip_ok_failure_error():
    from repro.interp.errors import AssertionFailure, SynRuntimeError
    from repro.lang.effects import Effect, EffectPair
    from repro.synth.goal import SpecOutcome

    ok = SpecOutcome(ok=True, passed_asserts=3, value=object())
    back = outcome_from_json(outcome_to_json(ok))
    assert back.ok and back.passed_asserts == 3 and back.value is None

    # "Pod" + "Pod.status" mixes a class-level region (region=None) with a
    # column region of the same class: the sort key must not compare None
    # against the column name (regression: TypeError on app benchmarks).
    failure = AssertionFailure(
        EffectPair(Effect.of("Pod", "Pod.status", "User"), Effect.star()), "boom"
    )
    failed = SpecOutcome(ok=False, passed_asserts=1, failure=failure)
    back = outcome_from_json(json.loads(json.dumps(outcome_to_json(failed))))
    assert not back.ok and back.passed_asserts == 1
    assert back.failure.read_effect == failure.read_effect
    assert back.failure.write_effect == failure.write_effect
    assert back.has_effect_error

    errored = SpecOutcome(ok=False, error=RuntimeError("nope"))
    back = outcome_from_json(outcome_to_json(errored))
    assert not back.ok and back.failure is None
    assert isinstance(back.error, SynRuntimeError)


def test_program_hash_is_structural():
    problem = get_benchmark("S1").build()
    from repro.lang import ast as A

    one = problem.make_program(A.IntLit(1))
    same = problem.make_program(A.IntLit(1))
    other = problem.make_program(A.IntLit(2))
    assert program_hash(one) == program_hash(same)
    assert program_hash(one) != program_hash(other)


def test_problem_fingerprint_tracks_definitions():
    first = get_benchmark("S1").build()
    second = get_benchmark("S1").build()
    # Two builds of the same benchmark fingerprint identically (that is what
    # makes the store useful across processes)...
    assert problem_fingerprint(first) == problem_fingerprint(second)
    # ...and different goals or a rebound reset closure change it.
    assert problem_fingerprint(first) != problem_fingerprint(
        get_benchmark("S4").build()
    )
    second.reset = lambda: None
    assert problem_fingerprint(first) != problem_fingerprint(second)


# ---------------------------------------------------------------------------
# Acceptance: two-pass Figure 8 precision sweep through one session
# ---------------------------------------------------------------------------


def test_two_pass_figure8_sweep_matches_cold_and_hits_store(tmp_path):
    """The PR's acceptance criterion, gated in CI.

    A Figure 8 precision sweep run twice through one session (with a
    memory-cache drop in between, simulating a new process over the same
    store) must synthesize programs identical to fully cold runs, replay
    fewer resets on the second pass, and answer >= 1 evaluation from the
    persistent store.
    """

    variants = [(p, {"effect_precision": p}) for p in PRECISIONS]
    config = SynthConfig.full(timeout_s=60)

    with SynthesisSession(config, store=str(tmp_path / "store.json")) as session:
        pass1 = session.sweep(["S1"], variants)
        session.clear_memory_caches()
        pass2 = session.sweep(["S1"], variants)
        cold = session.sweep(["S1"], variants, warm=False)

    for entries in (pass1, pass2, cold):
        assert all(e.success for e in entries)
    for warm1, warm2, isolated in zip(pass1, pass2, cold):
        assert warm1.variant == warm2.variant == isolated.variant
        # Identical programs: warm sharing and the store never change results.
        assert warm1.result.program == isolated.result.program
        assert warm2.result.program == isolated.result.program

    resets = lambda entries: sum(e.result.stats.reset_replays for e in entries)
    store_hits = lambda entries: sum(e.result.stats.store_hits for e in entries)
    # Pass 1 pays the one baseline capture; pass 2 re-answers everything
    # from the store without a single reset; cold pays one per cell.
    assert resets(pass2) < resets(pass1) <= resets(cold)
    assert store_hits(pass2) >= 1
    assert store_hits(pass1) == 0
