"""The paper's overview example (Figures 1 and 2): synthesizing update_post.

The specification says that a post's author may change its title, while other
users must not be able to change anything.  RbSyn synthesizes a method that
branches on ``Post.exists?(author:, slug:)``, updates the title in the then
branch and merely returns the post in the else branch.

Run with::

    python examples/update_post.py
"""

from __future__ import annotations

from repro.benchmarks import get_benchmark
from repro.synth import SynthConfig, SynthesisSession


def main() -> None:
    benchmark = get_benchmark("S6")  # "overview (ext)"
    config = benchmark.make_config(SynthConfig(timeout_s=120))

    with SynthesisSession(config) as session:
        problem = session.problem_for(benchmark)
        result = session.run(problem)
    print(f"benchmark : {benchmark.id} {benchmark.name}")
    print(f"specs     : {len(problem.specs)}")
    print(f"library   : {problem.library_method_count()} methods")
    print(f"time      : {result.elapsed_s:.2f}s")
    print(f"meth size : {result.method_size} AST nodes "
          f"(paper: {benchmark.paper.meth_size})")
    print(f"paths     : {result.paths} (paper: {benchmark.paper.syn_paths})\n")
    print(result.pretty())
    assert result.success


if __name__ == "__main__":
    main()
