"""Synthesizing effectful state transitions: Gitlab's Issue#close / #reopen.

These are benchmarks A7 and A8.  Both methods are straight-line sequences of
column writes discovered purely from the read effects of failing assertions:
closing an issue must write ``Issue.state`` and ``Issue.closed_at``, reopening
must write them back.  The example also shows how the synthesized method is
plain data (an AST) that can be executed against a fresh application context.

Run with::

    python examples/gitlab_issues.py
"""

from __future__ import annotations

from repro.benchmarks import get_benchmark
from repro.interp import Interpreter
from repro.synth import SynthConfig, SynthesisSession


def main() -> None:
    with SynthesisSession(SynthConfig(timeout_s=120)) as session:
        for benchmark_id in ("A7", "A8"):
            benchmark = get_benchmark(benchmark_id)
            result = session.run(benchmark)
            print(f"== {benchmark.id} {benchmark.name} "
                  f"({result.elapsed_s:.2f}s, {result.stats.evaluated} candidates)")
            print(result.pretty())
            print()
            assert result.success

        # Execute the synthesized A7 method against its app to show it is a
        # runnable artifact, not just a string.  Re-running A7 through the
        # warm session answers every spec from the memo.
        benchmark = get_benchmark("A7")
        problem = session.problem_for(benchmark)
        result = session.run(benchmark)
    from repro.apps.gitlab import seed_issues  # noqa: PLC0415

    app_issue = problem.class_table.pyclass("Issue")
    # Re-seed and close the crash issue through the synthesized method.
    problem.reset()
    seed_issues(_AppShim(problem))
    target = app_issue.find_by(title="Crash on startup")
    interpreter = Interpreter(problem.class_table)
    closed = interpreter.call_program(result.program, target.id)
    print(f"after running the synthesized method: state={closed.state!r}, "
          f"closed_at={closed.closed_at!r}")
    assert closed.state == "closed"


class _AppShim:
    """Minimal adapter so the seeding helper can be reused here."""

    def __init__(self, problem) -> None:
        self._problem = problem

    @property
    def models(self):
        return {
            "Issue": self._problem.class_table.pyclass("Issue"),
            "User": self._problem.class_table.pyclass("User"),
        }


if __name__ == "__main__":
    main()
