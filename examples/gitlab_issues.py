"""Synthesizing effectful state transitions: Gitlab's Issue#close / #reopen.

These are benchmarks A7 and A8.  Both methods are straight-line sequences of
column writes discovered purely from the read effects of failing assertions:
closing an issue must write ``Issue.state`` and ``Issue.closed_at``, reopening
must write them back.  The example also shows how the synthesized method is
plain data (an AST) that can be executed against a fresh application context.

Run with::

    python examples/gitlab_issues.py
"""

from __future__ import annotations

from repro.benchmarks import get_benchmark
from repro.interp import Interpreter
from repro.synth import SynthConfig, synthesize


def main() -> None:
    for benchmark_id in ("A7", "A8"):
        benchmark = get_benchmark(benchmark_id)
        problem = benchmark.build()
        result = synthesize(problem, benchmark.make_config(SynthConfig(timeout_s=120)))
        print(f"== {benchmark.id} {benchmark.name} "
              f"({result.elapsed_s:.2f}s, {result.stats.evaluated} candidates)")
        print(result.pretty())
        print()
        assert result.success

    # Execute the synthesized A7 method against a fresh app to show it is a
    # runnable artifact, not just a string.
    benchmark = get_benchmark("A7")
    problem = benchmark.build()
    result = synthesize(problem, benchmark.make_config(SynthConfig(timeout_s=120)))
    from repro.apps.gitlab import seed_issues  # noqa: PLC0415

    problem.reset()
    app_issue = problem.class_table.pyclass("Issue")
    # Re-seed and close the crash issue through the synthesized method.
    seed_issues_app = problem  # the problem's reset hook owns the database
    seed_issues_app.reset()
    seed_issues(_AppShim(problem))
    target = app_issue.find_by(title="Crash on startup")
    interpreter = Interpreter(problem.class_table)
    closed = interpreter.call_program(result.program, target.id)
    print(f"after running the synthesized method: state={closed.state!r}, "
          f"closed_at={closed.closed_at!r}")
    assert closed.state == "closed"


class _AppShim:
    """Minimal adapter so the seeding helper can be reused here."""

    def __init__(self, problem) -> None:
        self._problem = problem

    @property
    def models(self):
        return {
            "Issue": self._problem.class_table.pyclass("Issue"),
            "User": self._problem.class_table.pyclass("User"),
        }


if __name__ == "__main__":
    main()
