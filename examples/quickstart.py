"""Quickstart: synthesize a one-line method from a type and two specs.

This example builds the small blogging app of the paper's overview, then asks
the synthesizer for a ``user_exists`` method::

    define :user_exists, "(Str) -> Bool", [User] do
      spec "existing username" do ... end
      spec "missing username" do ... end
    end

and runs it through a :class:`~repro.synth.session.SynthesisSession`, the
engine object that owns the evaluation memo and state snapshots (and, with
``store=...``, a persistent spec-outcome store).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.apps.blog import build_blog_app, seed_blog
from repro.synth import SynthConfig, SynthesisSession, define


def main() -> None:
    app = build_blog_app()
    User = app.models["User"]

    problem = define(
        "user_exists",
        "(Str) -> Bool",
        consts=[True, False, User],
        class_table=app.class_table,
        reset=app.reset,
    )

    with problem.spec("existing username") as s:

        @s.setup
        def _(ctx):
            seed_blog(app)
            ctx.invoke("author")

        @s.postcond
        def _(ctx, result):
            ctx.assert_(lambda: result is True)

    with problem.spec("missing username") as s:

        @s.setup
        def _(ctx):
            seed_blog(app)
            ctx.invoke("nobody")

        @s.postcond
        def _(ctx, result):
            ctx.assert_(lambda: result is False)

    with SynthesisSession(SynthConfig(timeout_s=30)) as session:
        result = session.run(problem)
    print(f"synthesized in {result.elapsed_s:.2f}s "
          f"({result.stats.evaluated} candidates evaluated)\n")
    print(result.pretty())
    assert result.success


if __name__ == "__main__":
    main()
