"""Observability: trace a synthesis run and profile where its time went.

Setting ``SynthConfig.trace_path`` (or the ``REPRO_TRACE`` environment
variable) makes the session write a JSONL trace of the whole pipeline --
phases, per-spec searches, guard synthesis, spec evaluations, snapshot
restores and store traffic -- through :mod:`repro.obs.trace`.  Every run
also carries a unified metrics snapshot (:mod:`repro.obs.metrics`) on
``result.metrics``, and :mod:`repro.obs.tool` turns the trace into a
per-phase profile or a Chrome trace-event file.

Run with::

    python examples/traced_run.py

or trace any other entry point without touching code::

    REPRO_TRACE=run.trace.jsonl python examples/quickstart.py
    python scripts/trace_tool.py summarize run.trace.jsonl
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.obs.tool import format_summary, summarize, to_chrome
from repro.synth import SynthConfig, SynthesisSession


def main() -> None:
    trace_path = os.path.join(tempfile.mkdtemp(), "run.trace.jsonl")
    config = SynthConfig(timeout_s=60, trace_path=trace_path)

    # The session owns the tracer: it is installed on entry and closed
    # (restoring the zero-overhead disabled default) on exit.  A parallel
    # session merges worker-side spans into the same file.
    with SynthesisSession(config) as session:
        result = session.run("A1")
    print(f"synthesized {result.problem.name}:")
    print(result.pretty())
    print()

    # Every run exports a unified metrics snapshot -- the stats of every
    # engine subsystem plus per-phase wall-time histograms -- whether or
    # not tracing is on.
    phases = result.metrics["phases"]
    print("phase wall time (from result.metrics):")
    for name in sorted(phases, key=lambda n: -phases[n]["total_s"]):
        print(f"  {name:<12} {phases[name]['total_s']:.3f}s x{phases[name]['count']}")
    print()

    # The trace file breaks the same run down span by span.
    print(format_summary(summarize(trace_path)))

    # And exports to Chrome trace-event JSON for chrome://tracing/Perfetto.
    chrome_path = trace_path.replace(".jsonl", ".chrome.json")
    with open(chrome_path, "w") as fh:
        json.dump(to_chrome(trace_path), fh)
    print(f"\nchrome trace written to {chrome_path}")


if __name__ == "__main__":
    main()
