"""Parallel synthesis: fan a registry sweep out across worker processes.

The paper's per-spec searches are independent until the merge step, so a
:class:`~repro.synth.session.SynthesisSession` can own a worker pool
(:mod:`repro.synth.parallel`) and distribute work without changing any
result: per-spec searches within one run, and whole ``(benchmark, variant)``
cells of a sweep.  Workers share outcomes through a concurrent-safe SQLite
spec-outcome store, so a later process answers everything from disk.

Run with::

    python examples/parallel_sweep.py
"""

from __future__ import annotations

import os
import tempfile

from repro.synth import SynthConfig, SynthesisSession

BENCHMARKS = ["S1", "S4", "S5"]


def main() -> None:
    store_path = os.path.join(tempfile.mkdtemp(), "outcomes.sqlite")
    config = SynthConfig(timeout_s=60)

    # A session with `parallel=2` owns a two-worker pool.  `run` fans the
    # per-spec searches of a registry benchmark out across the workers;
    # `sweep` distributes whole cells.  Either way the synthesized programs
    # are identical to a serial run's.
    with SynthesisSession(config, store=store_path, parallel=2) as session:
        result = session.run("S4")
        print(f"S4 across 2 workers ({result.stats.parallel_tasks} tasks):")
        print(result.pretty())
        print()

        entries = session.sweep(BENCHMARKS)
        for entry in entries:
            status = "ok" if entry.success else "failed"
            print(f"  {entry.label:<4} {status}  {entry.elapsed_s:.3f}s")

    # The SQLite store outlives the pool: a fresh (serial) session answers
    # spec evaluations from disk instead of re-executing them.
    with SynthesisSession(config, store=store_path) as fresh:
        again = fresh.run("S4")
    print(
        f"\nfresh process re-ran S4 with {again.stats.store_hits} store hits "
        f"and {again.stats.reset_replays} resets"
    )


if __name__ == "__main__":
    main()
