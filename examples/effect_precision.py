"""Effect annotation precision vs. synthesis performance (Figure 8, small cut).

Runs a few benchmarks under the three effect-annotation precisions the paper
compares -- precise region labels, class-only labels, and purity labels -- and
prints the synthesis time for each.  Coarser annotations leave more candidate
"writer" methods for every failed assertion, so synthesis gets slower (and can
time out), while the synthesized code stays correct because candidates are
always validated against the specs.

The whole sweep runs through one :class:`~repro.synth.session.SynthesisSession`:
each benchmark's problem is built once and its database snapshot recordings
are shared across the three precision runs, so the coarser runs replay
recorded setups instead of rebuilding state from the reset closure.

Run with::

    python examples/effect_precision.py
"""

from __future__ import annotations

from repro.lang.effects import PRECISIONS
from repro.synth import SynthConfig, SynthesisSession

BENCHMARKS = ("S6", "A7", "A9")
TIMEOUT_S = 30.0


def main() -> None:
    header = f"{'benchmark':<24}" + "".join(f"{p:>12}" for p in PRECISIONS)
    print(header)
    print("-" * len(header))
    variants = [(p, {"effect_precision": p}) for p in PRECISIONS]
    with SynthesisSession(SynthConfig.full(timeout_s=TIMEOUT_S)) as session:
        entries = session.sweep(BENCHMARKS, variants)
    rows: dict[str, dict[str, str]] = {}
    names: dict[str, str] = {}
    for entry in entries:
        rows.setdefault(entry.label, {})[entry.variant] = (
            f"{entry.elapsed_s:.2f}s" if entry.success else "timeout"
        )
        names[entry.label] = entry.benchmark.name if entry.benchmark else ""
    for benchmark_id in BENCHMARKS:
        label = f"{benchmark_id} {names[benchmark_id]}"[:24]
        cells = [rows[benchmark_id].get(p, "timeout") for p in PRECISIONS]
        print(f"{label:<24}" + "".join(f"{c:>12}" for c in cells))


if __name__ == "__main__":
    main()
