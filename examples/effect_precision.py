"""Effect annotation precision vs. synthesis performance (Figure 8, small cut).

Runs a few benchmarks under the three effect-annotation precisions the paper
compares -- precise region labels, class-only labels, and purity labels -- and
prints the synthesis time for each.  Coarser annotations leave more candidate
"writer" methods for every failed assertion, so synthesis gets slower (and can
time out), while the synthesized code stays correct because candidates are
always validated against the specs.

Run with::

    python examples/effect_precision.py
"""

from __future__ import annotations

from repro.benchmarks import get_benchmark, run_benchmark
from repro.lang.effects import PRECISIONS
from repro.synth.config import SynthConfig

BENCHMARKS = ("S6", "A7", "A9")
TIMEOUT_S = 30.0


def main() -> None:
    header = f"{'benchmark':<24}" + "".join(f"{p:>12}" for p in PRECISIONS)
    print(header)
    print("-" * len(header))
    for benchmark_id in BENCHMARKS:
        benchmark = get_benchmark(benchmark_id)
        cells = []
        for precision in PRECISIONS:
            config = SynthConfig.full(timeout_s=TIMEOUT_S, effect_precision=precision)
            result = run_benchmark(benchmark, config, runs=1)
            cells.append(f"{result.median_s:.2f}s" if result.success else "timeout")
        label = f"{benchmark.id} {benchmark.name}"[:24]
        print(f"{label:<24}" + "".join(f"{c:>12}" for c in cells))


if __name__ == "__main__":
    main()
